//! Delay-range alignment for batched frequency stepping (paper §3.3).
//!
//! Inside a test batch, each frequency-stepping iteration should bisect as
//! many delay ranges as possible. Because the effective quantity tested is
//! `D_ij + x_i - x_j` (paper eq. 1), the already-present tuning buffers can
//! *shift* each range; the alignment problem chooses one clock period `T`
//! and a discrete setting for every involved buffer so that `T` lands as
//! close as possible to the (shifted) range centers:
//!
//! ```text
//! minimize  sum_p  k_p * | T - (c_p + x_i(p) - x_j(p)) |      (7)
//! subject to  x in discrete buffer ranges,                    (14)
//!             x_i - x_j >= lambda_p   (hold bounds, eq. 21)
//! ```
//!
//! The paper linearizes the absolute values with big-M binaries (eqs. 8–13)
//! and calls Gurobi. Here two solvers are provided:
//!
//! * [`AlignmentProblem::solve_coordinate_descent`] — alternating weighted
//!   medians: the optimal `T` for fixed buffers is a weighted median, and
//!   the optimal single buffer for fixed everything-else is found by
//!   scanning its (at most 20) discrete values. Converges in a handful of
//!   rounds and matches the exact optimum on practical instances.
//! * [`AlignmentProblem::solve_exact`] — the exact MILP (standard
//!   `eta >= +-(...)` linearization, no big-M needed under minimization)
//!   on the crate's branch-and-bound solver; used as the oracle in tests
//!   and for the ablation bench.
//!
//! Weights follow the paper's sorted-center rule
//! ([`sorted_center_weights`]): the middle range gets `k0`, neighbors lose
//! `kd` per rank step, so non-overlappable outliers (paper Fig. 6e) do not
//! leave `T` floating between two clusters.
//!
//! # Warm-started solving
//!
//! `solve_coordinate_descent` / `solve_exact` are the *cold* entry points:
//! every call allocates its own scratch. The frequency-stepping loop of
//! the aligned test solves one alignment problem **per iteration**, with
//! only the range centers (and the retired-path set) changing between
//! solves, so the hot path goes through an [`AlignmentEngine`] instead:
//! built once per batch, it mutates the path list in place between
//! iterations, reuses every scratch buffer, and warm-starts each solve —
//! the coordinate descent from the previous iteration's buffer values and
//! the exact MILP from the previous solution as its branch-and-bound
//! incumbent.

use crate::milp::DEFAULT_NODE_LIMIT;
use crate::{
    weighted_median_in_place, ConstraintOp, LinearProgram, MilpWorkspace, MixedIntegerProgram,
};

/// A discrete tunable-buffer variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferVar {
    /// Lowest representable delay (`r_i`).
    pub min: f64,
    /// Highest representable delay (`r_i + tau_i`).
    pub max: f64,
    /// Number of discrete settings (>= 2).
    pub steps: u32,
}

impl BufferVar {
    /// Spacing between adjacent settings.
    pub fn step_size(&self) -> f64 {
        if self.steps <= 1 {
            return 0.0;
        }
        (self.max - self.min) / (self.steps - 1) as f64
    }

    /// Value of discrete setting `k`.
    pub fn value(&self, k: u32) -> f64 {
        self.min + self.step_size() * k as f64
    }

    /// Nearest discrete setting to `x` (clamped into range).
    pub fn nearest(&self, x: f64) -> u32 {
        let d = self.step_size();
        if d == 0.0 {
            return 0;
        }
        let k = ((x.clamp(self.min, self.max) - self.min) / d).round() as u32;
        k.min(self.steps - 1)
    }

    /// All representable values, ascending.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.steps).map(move |k| self.value(k))
    }
}

/// One path's data in the alignment problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignPath {
    /// Current range center `(u_ij + l_ij) / 2`.
    pub center: f64,
    /// Weight `k_ij` (see [`sorted_center_weights`]).
    pub weight: f64,
    /// Index of the source buffer in the problem's buffer list, if any.
    pub source_buffer: Option<usize>,
    /// Index of the sink buffer, if any.
    pub sink_buffer: Option<usize>,
    /// Hold-time tuning bound `lambda_ij` (constraint
    /// `x_i - x_j >= lambda_ij`), if applicable.
    pub hold_lower_bound: Option<f64>,
}

impl AlignPath {
    /// The shift `x_i - x_j` for a buffer assignment.
    pub fn shift(&self, x: &[f64]) -> f64 {
        let xi = self.source_buffer.map_or(0.0, |b| x[b]);
        let xj = self.sink_buffer.map_or(0.0, |b| x[b]);
        xi - xj
    }

    /// `true` if the assignment satisfies this path's hold bound.
    pub fn hold_ok(&self, x: &[f64]) -> bool {
        match self.hold_lower_bound {
            None => true,
            Some(lambda) => self.shift(x) >= lambda - 1e-9,
        }
    }
}

/// The per-batch alignment problem.
#[derive(Debug, Clone, Default)]
pub struct AlignmentProblem {
    /// Paths in the batch.
    pub paths: Vec<AlignPath>,
    /// Buffers adjustable in this batch (indexed by the paths).
    pub buffers: Vec<BufferVar>,
}

/// Solution of an alignment problem.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentSolution {
    /// The chosen clock period `T`.
    pub period: f64,
    /// Discrete buffer values (same order as the problem's buffer list).
    pub buffer_values: Vec<f64>,
    /// Objective value `sum_p k_p eta_p`.
    pub objective: f64,
}

/// The paper's sorted-center weight rule: rank the ranges by center, give
/// the median rank weight `k0`, and subtract `kd` per rank step away from
/// it (clamped at `kd`).
///
/// With `k0 >> kd` all weights are nearly equal but ties break toward the
/// middle of the sorted list, which resolves the degenerate non-overlap
/// case of paper Fig. 6e.
pub fn sorted_center_weights(centers: &[f64], k0: f64, kd: f64) -> Vec<f64> {
    let mut order = Vec::new();
    let mut weights = Vec::new();
    sorted_center_weights_into(centers, k0, kd, &mut order, &mut weights);
    weights
}

/// Allocation-free variant of [`sorted_center_weights`]: `order` is rank
/// scratch and `weights` receives the result, both cleared and refilled
/// (existing capacity is reused).
pub fn sorted_center_weights_into(
    centers: &[f64],
    k0: f64,
    kd: f64,
    order: &mut Vec<usize>,
    weights: &mut Vec<f64>,
) {
    let n = centers.len();
    order.clear();
    weights.clear();
    if n == 0 {
        return;
    }
    order.extend(0..n);
    // The index tie-break reproduces the stable sort this replaced, so
    // equal centers keep their path order under the unstable sort.
    order.sort_unstable_by(|&a, &b| centers[a].total_cmp(&centers[b]).then(a.cmp(&b)));
    let middle = (n - 1) / 2;
    weights.resize(n, 0.0);
    for (rank, &idx) in order.iter().enumerate() {
        let dist = rank.abs_diff(middle) as f64;
        weights[idx] = (k0 - kd * dist).max(kd);
    }
}

impl AlignmentProblem {
    /// Objective value for a period and buffer assignment.
    pub fn objective(&self, period: f64, x: &[f64]) -> f64 {
        self.paths.iter().map(|p| p.weight * (period - (p.center + p.shift(x))).abs()).sum()
    }

    /// `true` if `x` lies on every buffer's discrete grid (within `tol`)
    /// and satisfies all hold bounds.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.buffers.len() {
            return false;
        }
        for (b, &v) in self.buffers.iter().zip(x) {
            if v < b.min - tol || v > b.max + tol {
                return false;
            }
            let snapped = b.value(b.nearest(v));
            if (snapped - v).abs() > tol {
                return false;
            }
        }
        self.paths.iter().all(|p| p.hold_ok(x))
    }

    /// Fast alignment: coordinate descent over the buffers where each
    /// candidate buffer value is scored with its *jointly optimal* clock
    /// period (a weighted median), plus a small multi-start. `init` seeds
    /// one start (snapped to the grid); pass the previous iteration's
    /// values to warm-start.
    ///
    /// Hold bounds are respected throughout; if a seed violates one, the
    /// violating buffers are first repaired greedily.
    ///
    /// This is the *cold* entry point — it builds a throwaway
    /// [`AlignmentEngine`] per call. Iterative callers should hold an
    /// engine and solve through it instead.
    ///
    /// # Panics
    ///
    /// Panics if `init.len() != self.buffers.len()`.
    pub fn solve_coordinate_descent(&self, init: &[f64]) -> AlignmentSolution {
        assert_eq!(init.len(), self.buffers.len());
        let mut engine = AlignmentEngine::new();
        engine.begin_batch(&self.buffers);
        engine.paths_mut().extend_from_slice(&self.paths);
        engine.seed(init);
        engine.solve().clone()
    }

    /// Exact MILP solve (oracle / ablation). Returns `None` if the hold
    /// bounds make the problem infeasible or the node limit is hit.
    pub fn solve_exact(&self) -> Option<AlignmentSolution> {
        if self.paths.is_empty() {
            return Some(AlignmentSolution {
                period: 0.0,
                buffer_values: self.buffers.iter().map(|b| b.value(0)).collect(),
                objective: 0.0,
            });
        }
        let mut lp = LinearProgram::new(0);
        let mut int_vars = Vec::new();
        if !build_exact_milp(self, &mut lp, &mut int_vars) {
            return None;
        }
        let sol = MixedIntegerProgram::new(lp, int_vars).solve();
        if !sol.is_optimal() {
            return None;
        }
        let buffer_values: Vec<f64> = self
            .buffers
            .iter()
            .enumerate()
            .map(|(b, buf)| buf.value(sol.values[1 + b].round() as u32))
            .collect();
        Some(AlignmentSolution { period: sol.values[0], buffer_values, objective: sol.objective })
    }

    /// Greedy hold repair: bump violating buffers toward feasibility.
    fn repair_hold(&self, x: &mut [f64]) {
        for _ in 0..4 * self.buffers.len().max(1) {
            let Some(viol) = self.paths.iter().find(|p| !p.hold_ok(x)) else {
                return;
            };
            let lambda = viol.hold_lower_bound.expect("violation implies bound");
            let deficit = lambda - viol.shift(x);
            // Raise the source buffer or lower the sink buffer.
            if let Some(b) = viol.source_buffer {
                let buf = &self.buffers[b];
                let target = buf.value(buf.nearest(x[b] + deficit));
                if target > x[b] + 1e-12 {
                    x[b] = target;
                    continue;
                }
            }
            if let Some(b) = viol.sink_buffer {
                let buf = &self.buffers[b];
                let target = buf.value(buf.nearest(x[b] - deficit));
                if target < x[b] - 1e-12 {
                    x[b] = target;
                    continue;
                }
            }
            return; // cannot repair further
        }
    }
}

/// Builds the exact-MILP formulation of `problem` into `lp` (reset in
/// place, existing allocations reused) with the integer variables listed
/// in `int_vars`.
///
/// Variables: `0 = T` (free), `1..=nb` = integer buffer steps `k_b`,
/// `nb+1..nb+np` = path residuals `eta_p >= 0`.
///
/// Returns `false` when a hold bound on a bufferless path is
/// unsatisfiable (`0 >= lambda > 0`), i.e. the problem is infeasible
/// before any solving.
fn build_exact_milp(
    problem: &AlignmentProblem,
    lp: &mut LinearProgram,
    int_vars: &mut Vec<usize>,
) -> bool {
    let nb = problem.buffers.len();
    let np = problem.paths.len();
    let n_vars = 1 + nb + np;
    lp.reset(n_vars);
    lp.set_free(0);
    for (b, buf) in problem.buffers.iter().enumerate() {
        lp.set_bounds(1 + b, 0.0, (buf.steps - 1) as f64);
    }
    for (p, path) in problem.paths.iter().enumerate() {
        lp.set_objective_coeff(1 + nb + p, path.weight);
    }

    for (p, path) in problem.paths.iter().enumerate() {
        let eta = 1 + nb + p;
        // t_p = T - c_p - x_i + x_j, with x = min + d*k.
        // eta >= t_p  and  eta >= -t_p.
        let mut base = -path.center;
        let mut terms_pos: [(usize, f64); 4] = [(0, 1.0), (eta, -1.0), (0, 0.0), (0, 0.0)];
        let mut terms_neg: [(usize, f64); 4] = [(0, -1.0), (eta, -1.0), (0, 0.0), (0, 0.0)];
        let mut nt = 2;
        if let Some(b) = path.source_buffer {
            let buf = &problem.buffers[b];
            base -= buf.min;
            terms_pos[nt] = (1 + b, -buf.step_size());
            terms_neg[nt] = (1 + b, buf.step_size());
            nt += 1;
        }
        if let Some(b) = path.sink_buffer {
            let buf = &problem.buffers[b];
            base += buf.min;
            terms_pos[nt] = (1 + b, buf.step_size());
            terms_neg[nt] = (1 + b, -buf.step_size());
            nt += 1;
        }
        // T - d_i k_i + d_j k_j - eta <= c_p + m_i - m_j
        lp.add_constraint(&terms_pos[..nt], ConstraintOp::Le, -base);
        lp.add_constraint(&terms_neg[..nt], ConstraintOp::Le, base);

        if let Some(lambda) = path.hold_lower_bound {
            // x_i - x_j >= lambda.
            let mut terms: [(usize, f64); 2] = [(0, 0.0), (0, 0.0)];
            let mut ht = 0;
            let mut rhs = lambda;
            if let Some(b) = path.source_buffer {
                let buf = &problem.buffers[b];
                terms[ht] = (1 + b, buf.step_size());
                ht += 1;
                rhs -= buf.min;
            }
            if let Some(b) = path.sink_buffer {
                let buf = &problem.buffers[b];
                terms[ht] = (1 + b, -buf.step_size());
                ht += 1;
                rhs += buf.min;
            }
            if ht == 0 {
                if rhs > 1e-9 {
                    return false; // 0 >= lambda > 0: infeasible
                }
            } else {
                lp.add_constraint(&terms[..ht], ConstraintOp::Ge, rhs);
            }
        }
    }
    int_vars.clear();
    int_vars.extend(1..=nb);
    true
}

/// Optimal period for fixed buffers: the weighted median of the shifted
/// centers, computed in the caller's scratch buffer.
fn best_period_in(problem: &AlignmentProblem, x: &[f64], pts: &mut Vec<(f64, f64)>) -> f64 {
    pts.clear();
    pts.extend(problem.paths.iter().map(|p| (p.center + p.shift(x), p.weight)));
    weighted_median_in_place(pts).unwrap_or(0.0)
}

/// Best discrete value for buffer `b` with the period re-optimized per
/// candidate (joint move), everything else fixed. `cand` and `pts` are
/// caller scratch.
fn best_buffer_value_in(
    problem: &AlignmentProblem,
    b: usize,
    x: &[f64],
    cand: &mut Vec<f64>,
    pts: &mut Vec<(f64, f64)>,
) -> (f64, f64, f64) {
    cand.clear();
    cand.extend_from_slice(x);
    let mut best_v = x[b];
    let mut best_t = best_period_in(problem, x, pts);
    let mut best_obj = problem.objective(best_t, x);
    for v in problem.buffers[b].values() {
        if (v - x[b]).abs() < 1e-15 {
            continue;
        }
        cand[b] = v;
        if !problem.paths.iter().all(|p| p.hold_ok(cand)) {
            continue;
        }
        let t = best_period_in(problem, cand, pts);
        let obj = problem.objective(t, cand);
        if obj < best_obj - 1e-12 {
            best_obj = obj;
            best_v = v;
            best_t = t;
        }
    }
    (best_v, best_t, best_obj)
}

/// Coordinate descent from the (already grid-snapped) seed in `x`,
/// mutating it toward a local optimum. Returns `(period, objective)`.
fn descend_in(
    problem: &AlignmentProblem,
    x: &mut [f64],
    cand: &mut Vec<f64>,
    pts: &mut Vec<(f64, f64)>,
) -> (f64, f64) {
    problem.repair_hold(x);
    let mut period = best_period_in(problem, x, pts);
    let mut objective = problem.objective(period, x);
    for _round in 0..50 {
        if objective == 0.0 {
            break; // perfect alignment: no candidate can improve on zero
        }
        let mut changed = false;
        for b in 0..problem.buffers.len() {
            let (best_v, best_t, best_obj) = best_buffer_value_in(problem, b, x, cand, pts);
            if best_obj + 1e-12 < objective {
                x[b] = best_v;
                period = best_t;
                objective = best_obj;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (period, objective)
}

/// Warm-started, allocation-free alignment solver for the per-batch
/// frequency-stepping loop.
///
/// Lifecycle:
///
/// 1. [`begin_batch`](Self::begin_batch) once per test batch — copies the
///    buffer list in and resets the warm start to zero (warm state never
///    crosses a batch, which is what keeps population runs bitwise
///    deterministic at any thread count when worker threads carry
///    long-lived engines);
/// 2. per iteration, rebuild the active-path list in place through
///    [`paths_mut`](Self::paths_mut) (capacity is retained) and call
///    [`solve`](Self::solve) or [`solve_exact`](Self::solve_exact);
/// 3. both solvers warm-start from the previous iteration's buffer values
///    — the descent as its first multi-start seed, the MILP as its
///    initial branch-and-bound incumbent — and update the warm state from
///    the solution they return.
///
/// All scratch (descent candidates, median points, the MILP working
/// program and its simplex workspace) lives in the engine: steady-state
/// [`solve`](Self::solve) calls allocate nothing, and
/// [`solve_exact`](Self::solve_exact) reuses the branch-and-bound
/// workspace but still rebuilds its constraint rows (a handful of small
/// vectors per path) each call.
#[derive(Debug)]
pub struct AlignmentEngine {
    problem: AlignmentProblem,
    /// Previous solution's buffer values (the warm start), grid-snapped.
    warm: Vec<f64>,
    /// Flat `nb`-chunks of already-descended seeds (for dedup).
    seeds: Vec<f64>,
    x: Vec<f64>,
    best_x: Vec<f64>,
    cand: Vec<f64>,
    pts: Vec<(f64, f64)>,
    /// `true` until the first solve after `begin_batch` / `seed`: the
    /// first solve runs the full multi-start, later solves descend from
    /// the warm seed alone (see [`solve`](Self::solve)).
    multistart: bool,
    solution: AlignmentSolution,
    lp: LinearProgram,
    int_vars: Vec<usize>,
    milp_ws: MilpWorkspace,
    exact_seed: Vec<f64>,
    node_limit: usize,
}

impl Default for AlignmentEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl AlignmentEngine {
    /// Creates an empty engine; buffers grow on first use.
    pub fn new() -> Self {
        AlignmentEngine {
            problem: AlignmentProblem::default(),
            warm: Vec::new(),
            seeds: Vec::new(),
            x: Vec::new(),
            best_x: Vec::new(),
            cand: Vec::new(),
            pts: Vec::new(),
            multistart: true,
            solution: AlignmentSolution { period: 0.0, buffer_values: Vec::new(), objective: 0.0 },
            lp: LinearProgram::new(0),
            int_vars: Vec::new(),
            milp_ws: MilpWorkspace::new(),
            exact_seed: Vec::new(),
            node_limit: DEFAULT_NODE_LIMIT,
        }
    }

    /// Caps the branch-and-bound nodes of [`solve_exact`](Self::solve_exact)
    /// (default [`crate::DEFAULT_NODE_LIMIT`]). A solve that exhausts the
    /// cap returns `None` — the caller's cue to fall back to the
    /// coordinate-descent heuristic — never a silently suboptimal
    /// "exact" solution.
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// The current branch-and-bound node cap for exact solves.
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// Starts a new batch: installs its buffers, clears the path list, and
    /// resets the warm start to all-zero buffer values.
    pub fn begin_batch(&mut self, buffers: &[BufferVar]) {
        self.problem.buffers.clear();
        self.problem.buffers.extend_from_slice(buffers);
        self.problem.paths.clear();
        self.warm.clear();
        self.warm.resize(buffers.len(), 0.0);
        self.multistart = true;
    }

    /// Overrides the warm start (grid snapping happens at solve time) and
    /// re-arms the full multi-start for the next solve, as after
    /// [`begin_batch`](Self::begin_batch).
    ///
    /// # Panics
    ///
    /// Panics if `init.len()` differs from the batch's buffer count.
    pub fn seed(&mut self, init: &[f64]) {
        assert_eq!(init.len(), self.problem.buffers.len());
        self.warm.clear();
        self.warm.extend_from_slice(init);
        self.multistart = true;
    }

    /// The batch's buffers.
    pub fn buffers(&self) -> &[BufferVar] {
        &self.problem.buffers
    }

    /// The current iteration's paths; rebuild in place between solves
    /// (`clear` + `push`/`extend`, capacity is retained).
    pub fn paths_mut(&mut self) -> &mut Vec<AlignPath> {
        &mut self.problem.paths
    }

    /// The current iteration's paths.
    pub fn paths(&self) -> &[AlignPath] {
        &self.problem.paths
    }

    /// The warm-start buffer values the next solve will start from.
    pub fn warm_values(&self) -> &[f64] {
        &self.warm
    }

    /// The most recent solution (untouched until the next solve).
    pub fn last_solution(&self) -> &AlignmentSolution {
        &self.solution
    }

    /// Coordinate-descent solve with the engine's warm-start rule:
    ///
    /// * the **first** solve after [`begin_batch`](Self::begin_batch) /
    ///   [`seed`](Self::seed) runs the full multi-start (warm seed plus
    ///   all-zero / lowest / highest buffer values, duplicates descended
    ///   once) — identical to
    ///   [`AlignmentProblem::solve_coordinate_descent`], because at batch
    ///   start the initial basin is unknown;
    /// * every **subsequent** solve descends from the warm seed alone.
    ///   Between frequency-stepping iterations the range centers drift
    ///   continuously, so the previous optimum sits in the new optimum's
    ///   basin and the far-away multi-start seeds only repeat work; the
    ///   result can never be worse than the warm seed itself and in
    ///   steady state converges in a single scan.
    ///
    /// Steady-state calls allocate nothing.
    pub fn solve(&mut self) -> &AlignmentSolution {
        let nb = self.problem.buffers.len();
        let kinds: std::ops::Range<u8> = if self.multistart { 0..4 } else { 0..1 };
        self.multistart = false;
        let mut best_obj = f64::INFINITY;
        let mut best_period = 0.0;
        let mut have_best = false;
        self.seeds.clear();
        for kind in kinds {
            {
                let AlignmentEngine { problem, warm, x, .. } = self;
                x.clear();
                match kind {
                    0 => x.extend(
                        problem
                            .buffers
                            .iter()
                            .zip(warm.iter())
                            .map(|(b, &w)| b.value(b.nearest(w))),
                    ),
                    1 => x.extend(problem.buffers.iter().map(|b| b.value(b.nearest(0.0)))),
                    2 => x.extend(problem.buffers.iter().map(|b| b.value(0))),
                    _ => x.extend(problem.buffers.iter().map(|b| b.value(b.steps - 1))),
                }
            }
            // Identical seeds descend to identical optima; skip repeats.
            if nb == 0 {
                if kind > 0 {
                    continue;
                }
            } else if self.seeds.chunks(nb).any(|c| c == &self.x[..]) {
                continue;
            }
            self.seeds.extend_from_slice(&self.x);
            let (period, objective) = {
                let AlignmentEngine { problem, x, cand, pts, .. } = self;
                descend_in(problem, x, cand, pts)
            };
            if !have_best || objective < best_obj - 1e-12 {
                have_best = true;
                best_obj = objective;
                best_period = period;
                self.best_x.clear();
                self.best_x.extend_from_slice(&self.x);
            }
        }
        self.solution.period = best_period;
        self.solution.objective = best_obj;
        self.solution.buffer_values.clear();
        self.solution.buffer_values.extend_from_slice(&self.best_x);
        self.warm.clear();
        self.warm.extend_from_slice(&self.best_x);
        &self.solution
    }

    /// Exact MILP solve, warm-started with the previous solution as the
    /// branch-and-bound incumbent. Returns `None` (leaving the last
    /// solution untouched) if the hold bounds make the problem infeasible
    /// or the node limit is hit; the objective is always the true optimum
    /// otherwise.
    pub fn solve_exact(&mut self) -> Option<&AlignmentSolution> {
        if self.problem.paths.is_empty() {
            self.solution.period = 0.0;
            self.solution.objective = 0.0;
            self.solution.buffer_values.clear();
            self.solution.buffer_values.extend(self.problem.buffers.iter().map(|b| b.value(0)));
            self.warm.clear();
            self.warm.extend_from_slice(&self.solution.buffer_values);
            return Some(&self.solution);
        }
        if !build_exact_milp(&self.problem, &mut self.lp, &mut self.int_vars) {
            return None;
        }
        // Incumbent from the warm start: snap to the grid, repair holds,
        // and bail out of seeding (not solving) if holds stay violated.
        let seeded = {
            let AlignmentEngine { problem, warm, x, pts, exact_seed, .. } = self;
            x.clear();
            x.extend(problem.buffers.iter().zip(warm.iter()).map(|(b, &w)| b.value(b.nearest(w))));
            problem.repair_hold(x);
            if problem.paths.iter().all(|p| p.hold_ok(x)) {
                let t = best_period_in(problem, x, pts);
                exact_seed.clear();
                exact_seed.push(t);
                exact_seed.extend(
                    problem.buffers.iter().zip(x.iter()).map(|(b, &v)| b.nearest(v) as f64),
                );
                exact_seed
                    .extend(problem.paths.iter().map(|p| (t - (p.center + p.shift(x))).abs()));
                true
            } else {
                false
            }
        };
        let AlignmentEngine {
            problem,
            lp,
            int_vars,
            milp_ws,
            exact_seed,
            solution,
            warm,
            node_limit,
            ..
        } = self;
        let incumbent = seeded.then_some(&exact_seed[..]);
        let sol = crate::milp::solve_milp(lp, int_vars, *node_limit, milp_ws, incumbent);
        if !sol.is_optimal() {
            return None;
        }
        solution.period = sol.values[0];
        solution.objective = sol.objective;
        solution.buffer_values.clear();
        solution.buffer_values.extend(
            problem
                .buffers
                .iter()
                .enumerate()
                .map(|(b, buf)| buf.value(sol.values[1 + b].round() as u32)),
        );
        warm.clear();
        warm.extend_from_slice(&solution.buffer_values);
        Some(&self.solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(min: f64, max: f64, steps: u32) -> BufferVar {
        BufferVar { min, max, steps }
    }

    fn path(center: f64, src: Option<usize>, snk: Option<usize>) -> AlignPath {
        AlignPath {
            center,
            weight: 1.0,
            source_buffer: src,
            sink_buffer: snk,
            hold_lower_bound: None,
        }
    }

    #[test]
    fn buffer_var_grid() {
        let b = buf(-1.0, 1.0, 21);
        assert!((b.step_size() - 0.1).abs() < 1e-12);
        assert_eq!(b.value(10), 0.0);
        assert_eq!(b.nearest(0.04), 10);
        assert_eq!(b.nearest(99.0), 20);
        assert_eq!(b.values().count(), 21);
    }

    #[test]
    fn no_buffers_period_is_weighted_median() {
        let problem = AlignmentProblem {
            paths: vec![path(2.0, None, None), path(4.0, None, None), path(10.0, None, None)],
            buffers: vec![],
        };
        let sol = problem.solve_coordinate_descent(&[]);
        assert_eq!(sol.period, 4.0);
        assert!((sol.objective - 8.0).abs() < 1e-9);
    }

    #[test]
    fn buffers_align_two_separated_ranges() {
        // Two paths with centers 0 and 4; the second path's source buffer
        // can shift its range by -2..2 in 0.5 steps. Perfect alignment:
        // shift path 2 down by 2 to center 2... but T can also move. The
        // optimum is objective ~0 when centers can meet: center2 + x = 2
        // with x = -2, T = 2... path1 center 0 unshiftable, so T = 0 and
        // path2 shifted to 4 - 2 = 2 -> residual 2. Actually optimal:
        // T=0+e? Let's just check exact == descent.
        let problem = AlignmentProblem {
            paths: vec![path(0.0, None, None), path(4.0, Some(0), None)],
            buffers: vec![buf(-2.0, 2.0, 9)],
        };
        let exact = problem.solve_exact().expect("feasible");
        let fast = problem.solve_coordinate_descent(&[0.0]);
        assert!(
            (fast.objective - exact.objective).abs() < 1e-6,
            "fast {} vs exact {}",
            fast.objective,
            exact.objective
        );
        // Ranges can meet: path2 shifted to 2.0 (x=-2), T anywhere between
        // 0 and 2 gives objective 2.0; or T=0, x=-2 -> |0-0| + |0-2| = 2.
        assert!((exact.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn perfectly_alignable_ranges_reach_zero() {
        // Path centers 0 and 1; buffer on path 2 with exactly 1.0 reachable
        // shift: x = -1 aligns both at 0.
        let problem = AlignmentProblem {
            paths: vec![path(0.0, None, None), path(1.0, Some(0), None)],
            buffers: vec![buf(-2.0, 2.0, 5)],
        };
        let exact = problem.solve_exact().expect("feasible");
        assert!(exact.objective.abs() < 1e-7);
        let fast = problem.solve_coordinate_descent(&[0.0]);
        assert!(fast.objective.abs() < 1e-7);
        assert!(problem.is_feasible(&fast.buffer_values, 1e-9));
    }

    #[test]
    fn shared_buffer_couples_paths() {
        // Buffer 0 is the SINK of path A (center 5) and the SOURCE of path
        // B (center 5): raising x shifts A down and B up — they separate.
        // Optimal x = 0.
        let problem = AlignmentProblem {
            paths: vec![path(5.0, None, Some(0)), path(5.0, Some(0), None)],
            buffers: vec![buf(-1.0, 1.0, 5)],
        };
        let exact = problem.solve_exact().expect("feasible");
        assert!(exact.objective.abs() < 1e-7);
        assert!((exact.buffer_values[0]).abs() < 1e-9);
    }

    #[test]
    fn hold_bounds_restrict_shifts() {
        // Path B (center 8, source buffer) wants x = -2 to align with
        // center 6, but hold requires x >= -0.5.
        let problem = AlignmentProblem {
            paths: vec![
                path(6.0, None, None),
                AlignPath {
                    center: 8.0,
                    weight: 1.0,
                    source_buffer: Some(0),
                    sink_buffer: None,
                    hold_lower_bound: Some(-0.5),
                },
            ],
            buffers: vec![buf(-2.0, 2.0, 9)],
        };
        let exact = problem.solve_exact().expect("feasible");
        let fast = problem.solve_coordinate_descent(&[0.0]);
        // Best: x = -0.5 -> centers 6 and 7.5, objective 1.5.
        assert!((exact.objective - 1.5).abs() < 1e-6);
        assert!((fast.objective - 1.5).abs() < 1e-6);
        assert!(fast.buffer_values[0] >= -0.5 - 1e-9);
    }

    #[test]
    fn sorted_center_weights_prioritize_middle() {
        let centers = [10.0, 0.0, 5.0, 20.0, 15.0];
        let w = sorted_center_weights(&centers, 1000.0, 1.0);
        // Sorted: 0, 5, 10, 15, 20 -> middle is 10.
        assert_eq!(w[0], 1000.0); // center 10.0
        assert_eq!(w[2], 999.0); // center 5
        assert_eq!(w[4], 999.0); // center 15
        assert_eq!(w[1], 998.0); // center 0
        assert_eq!(w[3], 998.0); // center 20
        assert!(sorted_center_weights(&[], 10.0, 1.0).is_empty());
    }

    #[test]
    fn weights_never_drop_below_kd() {
        let centers: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let w = sorted_center_weights(&centers, 10.0, 1.0);
        assert!(w.iter().all(|&x| x >= 1.0));
    }

    #[test]
    fn descent_matches_exact_on_random_instances() {
        let mut state = 0x77_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 100.0
        };
        let mut worse = 0;
        let cases = 25;
        for _case in 0..cases {
            let nb = 1 + (next() as usize) % 2; // 1-2 buffers
            let buffers: Vec<BufferVar> = (0..nb).map(|_| buf(-2.0, 2.0, 9)).collect();
            let np = 2 + (next() as usize) % 3;
            let paths: Vec<AlignPath> = (0..np)
                .map(|_| {
                    let which = (next() * 10.0) as usize % 3;
                    let b = (next() as usize) % nb;
                    let (src, snk) = match which {
                        0 => (Some(b), None),
                        1 => (None, Some(b)),
                        _ => (None, None),
                    };
                    path(next(), src, snk)
                })
                .collect();
            let problem = AlignmentProblem { paths, buffers };
            let exact = problem.solve_exact().expect("feasible without hold bounds");
            let fast = problem.solve_coordinate_descent(&vec![0.0; nb]);
            assert!(problem.is_feasible(&fast.buffer_values, 1e-9));
            // Coordinate descent is a heuristic: allow rare slightly-worse
            // outcomes but never infeasibility; the bulk must match.
            if fast.objective > exact.objective + 1e-6 {
                worse += 1;
            }
        }
        assert!(worse * 5 <= cases, "descent missed the optimum too often: {worse}/{cases}");
    }

    #[test]
    fn exhausted_node_limit_returns_none_and_preserves_the_last_solution() {
        // A problem whose root relaxation is fractional (the buffer grid
        // forces branching): with a one-node cap the exact solve must
        // report failure instead of a silently suboptimal "optimum", and
        // the engine's last solution must stay what the heuristic left
        // there — that pair is exactly the fallback contract the aligned
        // test relies on.
        let problem = AlignmentProblem {
            paths: vec![path(0.0, None, None), path(3.3, Some(0), None), path(7.1, Some(1), None)],
            buffers: vec![buf(-2.0, 2.0, 9), buf(-2.0, 2.0, 9)],
        };
        let mut engine = AlignmentEngine::new();
        engine.begin_batch(&problem.buffers);
        engine.paths_mut().extend_from_slice(&problem.paths);
        let heuristic = engine.solve().clone();

        engine.set_node_limit(0);
        assert_eq!(engine.node_limit(), 0);
        assert!(engine.solve_exact().is_none(), "a 0-node budget cannot prove optimality");
        assert_eq!(
            engine.last_solution(),
            &heuristic,
            "a failed exact solve must leave the previous solution untouched"
        );

        // With the default budget the same engine closes the tree and can
        // only match or improve the heuristic objective.
        engine.set_node_limit(crate::DEFAULT_NODE_LIMIT);
        let exact = engine.solve_exact().expect("feasible problem").clone();
        assert!(exact.objective <= heuristic.objective + 1e-9);
        assert!(problem.is_feasible(&exact.buffer_values, 1e-9));
    }

    #[test]
    fn empty_problem_is_trivial() {
        let problem = AlignmentProblem { paths: vec![], buffers: vec![buf(-1.0, 1.0, 3)] };
        let sol = problem.solve_exact().expect("trivially feasible");
        assert_eq!(sol.objective, 0.0);
        let fast = problem.solve_coordinate_descent(&[0.5]);
        assert_eq!(fast.objective, 0.0);
    }
}
