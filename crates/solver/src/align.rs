//! Delay-range alignment for batched frequency stepping (paper §3.3).
//!
//! Inside a test batch, each frequency-stepping iteration should bisect as
//! many delay ranges as possible. Because the effective quantity tested is
//! `D_ij + x_i - x_j` (paper eq. 1), the already-present tuning buffers can
//! *shift* each range; the alignment problem chooses one clock period `T`
//! and a discrete setting for every involved buffer so that `T` lands as
//! close as possible to the (shifted) range centers:
//!
//! ```text
//! minimize  sum_p  k_p * | T - (c_p + x_i(p) - x_j(p)) |      (7)
//! subject to  x in discrete buffer ranges,                    (14)
//!             x_i - x_j >= lambda_p   (hold bounds, eq. 21)
//! ```
//!
//! The paper linearizes the absolute values with big-M binaries (eqs. 8–13)
//! and calls Gurobi. Here two solvers are provided:
//!
//! * [`AlignmentProblem::solve_coordinate_descent`] — alternating weighted
//!   medians: the optimal `T` for fixed buffers is a weighted median, and
//!   the optimal single buffer for fixed everything-else is found by
//!   scanning its (at most 20) discrete values. Converges in a handful of
//!   rounds and matches the exact optimum on practical instances.
//! * [`AlignmentProblem::solve_exact`] — the exact MILP (standard
//!   `eta >= +-(...)` linearization, no big-M needed under minimization)
//!   on the crate's branch-and-bound solver; used as the oracle in tests
//!   and for the ablation bench.
//!
//! Weights follow the paper's sorted-center rule
//! ([`sorted_center_weights`]): the middle range gets `k0`, neighbors lose
//! `kd` per rank step, so non-overlappable outliers (paper Fig. 6e) do not
//! leave `T` floating between two clusters.

use crate::{weighted_median, ConstraintOp, LinearProgram, MixedIntegerProgram};

/// A discrete tunable-buffer variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferVar {
    /// Lowest representable delay (`r_i`).
    pub min: f64,
    /// Highest representable delay (`r_i + tau_i`).
    pub max: f64,
    /// Number of discrete settings (>= 2).
    pub steps: u32,
}

impl BufferVar {
    /// Spacing between adjacent settings.
    pub fn step_size(&self) -> f64 {
        if self.steps <= 1 {
            return 0.0;
        }
        (self.max - self.min) / (self.steps - 1) as f64
    }

    /// Value of discrete setting `k`.
    pub fn value(&self, k: u32) -> f64 {
        self.min + self.step_size() * k as f64
    }

    /// Nearest discrete setting to `x` (clamped into range).
    pub fn nearest(&self, x: f64) -> u32 {
        let d = self.step_size();
        if d == 0.0 {
            return 0;
        }
        let k = ((x.clamp(self.min, self.max) - self.min) / d).round() as u32;
        k.min(self.steps - 1)
    }

    /// All representable values, ascending.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.steps).map(move |k| self.value(k))
    }
}

/// One path's data in the alignment problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignPath {
    /// Current range center `(u_ij + l_ij) / 2`.
    pub center: f64,
    /// Weight `k_ij` (see [`sorted_center_weights`]).
    pub weight: f64,
    /// Index of the source buffer in the problem's buffer list, if any.
    pub source_buffer: Option<usize>,
    /// Index of the sink buffer, if any.
    pub sink_buffer: Option<usize>,
    /// Hold-time tuning bound `lambda_ij` (constraint
    /// `x_i - x_j >= lambda_ij`), if applicable.
    pub hold_lower_bound: Option<f64>,
}

impl AlignPath {
    /// The shift `x_i - x_j` for a buffer assignment.
    pub fn shift(&self, x: &[f64]) -> f64 {
        let xi = self.source_buffer.map_or(0.0, |b| x[b]);
        let xj = self.sink_buffer.map_or(0.0, |b| x[b]);
        xi - xj
    }

    /// `true` if the assignment satisfies this path's hold bound.
    pub fn hold_ok(&self, x: &[f64]) -> bool {
        match self.hold_lower_bound {
            None => true,
            Some(lambda) => self.shift(x) >= lambda - 1e-9,
        }
    }
}

/// The per-batch alignment problem.
#[derive(Debug, Clone, Default)]
pub struct AlignmentProblem {
    /// Paths in the batch.
    pub paths: Vec<AlignPath>,
    /// Buffers adjustable in this batch (indexed by the paths).
    pub buffers: Vec<BufferVar>,
}

/// Solution of an alignment problem.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentSolution {
    /// The chosen clock period `T`.
    pub period: f64,
    /// Discrete buffer values (same order as the problem's buffer list).
    pub buffer_values: Vec<f64>,
    /// Objective value `sum_p k_p eta_p`.
    pub objective: f64,
}

/// The paper's sorted-center weight rule: rank the ranges by center, give
/// the median rank weight `k0`, and subtract `kd` per rank step away from
/// it (clamped at `kd`).
///
/// With `k0 >> kd` all weights are nearly equal but ties break toward the
/// middle of the sorted list, which resolves the degenerate non-overlap
/// case of paper Fig. 6e.
pub fn sorted_center_weights(centers: &[f64], k0: f64, kd: f64) -> Vec<f64> {
    let n = centers.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| centers[a].total_cmp(&centers[b]));
    let middle = (n - 1) / 2;
    let mut weights = vec![0.0; n];
    for (rank, &idx) in order.iter().enumerate() {
        let dist = rank.abs_diff(middle) as f64;
        weights[idx] = (k0 - kd * dist).max(kd);
    }
    weights
}

impl AlignmentProblem {
    /// Objective value for a period and buffer assignment.
    pub fn objective(&self, period: f64, x: &[f64]) -> f64 {
        self.paths.iter().map(|p| p.weight * (period - (p.center + p.shift(x))).abs()).sum()
    }

    /// `true` if `x` lies on every buffer's discrete grid (within `tol`)
    /// and satisfies all hold bounds.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.buffers.len() {
            return false;
        }
        for (b, &v) in self.buffers.iter().zip(x) {
            if v < b.min - tol || v > b.max + tol {
                return false;
            }
            let snapped = b.value(b.nearest(v));
            if (snapped - v).abs() > tol {
                return false;
            }
        }
        self.paths.iter().all(|p| p.hold_ok(x))
    }

    /// Fast alignment: coordinate descent over the buffers where each
    /// candidate buffer value is scored with its *jointly optimal* clock
    /// period (a weighted median), plus a small multi-start. `init` seeds
    /// one start (snapped to the grid); pass the previous iteration's
    /// values to warm-start.
    ///
    /// Hold bounds are respected throughout; if a seed violates one, the
    /// violating buffers are first repaired greedily.
    ///
    /// # Panics
    ///
    /// Panics if `init.len() != self.buffers.len()`.
    pub fn solve_coordinate_descent(&self, init: &[f64]) -> AlignmentSolution {
        assert_eq!(init.len(), self.buffers.len());
        let zeros: Vec<f64> = self.buffers.iter().map(|b| b.value(b.nearest(0.0))).collect();
        let lows: Vec<f64> = self.buffers.iter().map(|b| b.value(0)).collect();
        let highs: Vec<f64> = self.buffers.iter().map(|b| b.value(b.steps - 1)).collect();
        let mut best: Option<AlignmentSolution> = None;
        for seed in [init.to_vec(), zeros, lows, highs] {
            let sol = self.descend_from(&seed);
            if best.as_ref().is_none_or(|b| sol.objective < b.objective - 1e-12) {
                best = Some(sol);
            }
        }
        best.expect("at least one start")
    }

    fn descend_from(&self, seed: &[f64]) -> AlignmentSolution {
        let mut x: Vec<f64> =
            self.buffers.iter().zip(seed).map(|(b, &v)| b.value(b.nearest(v))).collect();
        self.repair_hold(&mut x);

        let mut period = self.best_period(&x);
        let mut objective = self.objective(period, &x);
        for _round in 0..50 {
            let mut changed = false;
            for b in 0..self.buffers.len() {
                let (best_v, best_t, best_obj) = self.best_buffer_value(b, &x);
                if best_obj + 1e-12 < objective {
                    x[b] = best_v;
                    period = best_t;
                    objective = best_obj;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        AlignmentSolution { period, buffer_values: x, objective }
    }

    /// Exact MILP solve (oracle / ablation). Returns `None` if the hold
    /// bounds make the problem infeasible or the node limit is hit.
    pub fn solve_exact(&self) -> Option<AlignmentSolution> {
        let nb = self.buffers.len();
        let np = self.paths.len();
        if np == 0 {
            return Some(AlignmentSolution {
                period: 0.0,
                buffer_values: self.buffers.iter().map(|b| b.value(0)).collect(),
                objective: 0.0,
            });
        }
        // Variables: 0 = T (free), 1..=nb = k_b (integer steps),
        // nb+1..nb+np = eta_p (>= 0).
        let n_vars = 1 + nb + np;
        let mut lp = LinearProgram::new(n_vars);
        lp.set_free(0);
        for (b, buf) in self.buffers.iter().enumerate() {
            lp.set_bounds(1 + b, 0.0, (buf.steps - 1) as f64);
        }
        let mut obj = vec![0.0; n_vars];
        for (p, path) in self.paths.iter().enumerate() {
            obj[1 + nb + p] = path.weight;
        }
        lp.set_objective(&obj);

        for (p, path) in self.paths.iter().enumerate() {
            let eta = 1 + nb + p;
            // t_p = T - c_p - x_i + x_j, with x = min + d*k.
            // eta >= t_p  and  eta >= -t_p.
            let mut base = -path.center;
            let mut terms_pos: Vec<(usize, f64)> = vec![(0, 1.0), (eta, -1.0)];
            let mut terms_neg: Vec<(usize, f64)> = vec![(0, -1.0), (eta, -1.0)];
            if let Some(b) = path.source_buffer {
                let buf = &self.buffers[b];
                base -= buf.min;
                terms_pos.push((1 + b, -buf.step_size()));
                terms_neg.push((1 + b, buf.step_size()));
            }
            if let Some(b) = path.sink_buffer {
                let buf = &self.buffers[b];
                base += buf.min;
                terms_pos.push((1 + b, buf.step_size()));
                terms_neg.push((1 + b, -buf.step_size()));
            }
            // T - d_i k_i + d_j k_j - eta <= c_p + m_i - m_j
            lp.add_constraint(&terms_pos, ConstraintOp::Le, -base);
            lp.add_constraint(&terms_neg, ConstraintOp::Le, base);

            if let Some(lambda) = path.hold_lower_bound {
                // x_i - x_j >= lambda.
                let mut terms: Vec<(usize, f64)> = Vec::new();
                let mut rhs = lambda;
                if let Some(b) = path.source_buffer {
                    let buf = &self.buffers[b];
                    terms.push((1 + b, buf.step_size()));
                    rhs -= buf.min;
                }
                if let Some(b) = path.sink_buffer {
                    let buf = &self.buffers[b];
                    terms.push((1 + b, -buf.step_size()));
                    rhs += buf.min;
                }
                if terms.is_empty() {
                    if rhs > 1e-9 {
                        return None; // 0 >= lambda > 0: infeasible
                    }
                } else {
                    lp.add_constraint(&terms, ConstraintOp::Ge, rhs);
                }
            }
        }

        let int_vars: Vec<usize> = (1..=nb).collect();
        let sol = MixedIntegerProgram::new(lp, int_vars).solve();
        if !sol.optimal {
            return None;
        }
        let buffer_values: Vec<f64> = self
            .buffers
            .iter()
            .enumerate()
            .map(|(b, buf)| buf.value(sol.values[1 + b].round() as u32))
            .collect();
        Some(AlignmentSolution { period: sol.values[0], buffer_values, objective: sol.objective })
    }

    /// Optimal period for fixed buffers: weighted median of shifted centers.
    fn best_period(&self, x: &[f64]) -> f64 {
        let pts: Vec<(f64, f64)> =
            self.paths.iter().map(|p| (p.center + p.shift(x), p.weight)).collect();
        weighted_median(&pts).unwrap_or(0.0)
    }

    /// Best discrete value for buffer `b` with the period re-optimized per
    /// candidate (joint move), everything else fixed.
    fn best_buffer_value(&self, b: usize, x: &[f64]) -> (f64, f64, f64) {
        let mut candidate = x.to_vec();
        let mut best_v = x[b];
        let mut best_t = self.best_period(x);
        let mut best_obj = self.objective(best_t, x);
        for v in self.buffers[b].values() {
            if (v - x[b]).abs() < 1e-15 {
                continue;
            }
            candidate[b] = v;
            if !self.paths.iter().all(|p| p.hold_ok(&candidate)) {
                continue;
            }
            let t = self.best_period(&candidate);
            let obj = self.objective(t, &candidate);
            if obj < best_obj - 1e-12 {
                best_obj = obj;
                best_v = v;
                best_t = t;
            }
        }
        (best_v, best_t, best_obj)
    }

    /// Greedy hold repair: bump violating buffers toward feasibility.
    fn repair_hold(&self, x: &mut [f64]) {
        for _ in 0..4 * self.buffers.len().max(1) {
            let Some(viol) = self.paths.iter().find(|p| !p.hold_ok(x)) else {
                return;
            };
            let lambda = viol.hold_lower_bound.expect("violation implies bound");
            let deficit = lambda - viol.shift(x);
            // Raise the source buffer or lower the sink buffer.
            if let Some(b) = viol.source_buffer {
                let buf = &self.buffers[b];
                let target = buf.value(buf.nearest(x[b] + deficit));
                if target > x[b] + 1e-12 {
                    x[b] = target;
                    continue;
                }
            }
            if let Some(b) = viol.sink_buffer {
                let buf = &self.buffers[b];
                let target = buf.value(buf.nearest(x[b] - deficit));
                if target < x[b] - 1e-12 {
                    x[b] = target;
                    continue;
                }
            }
            return; // cannot repair further
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(min: f64, max: f64, steps: u32) -> BufferVar {
        BufferVar { min, max, steps }
    }

    fn path(center: f64, src: Option<usize>, snk: Option<usize>) -> AlignPath {
        AlignPath {
            center,
            weight: 1.0,
            source_buffer: src,
            sink_buffer: snk,
            hold_lower_bound: None,
        }
    }

    #[test]
    fn buffer_var_grid() {
        let b = buf(-1.0, 1.0, 21);
        assert!((b.step_size() - 0.1).abs() < 1e-12);
        assert_eq!(b.value(10), 0.0);
        assert_eq!(b.nearest(0.04), 10);
        assert_eq!(b.nearest(99.0), 20);
        assert_eq!(b.values().count(), 21);
    }

    #[test]
    fn no_buffers_period_is_weighted_median() {
        let problem = AlignmentProblem {
            paths: vec![path(2.0, None, None), path(4.0, None, None), path(10.0, None, None)],
            buffers: vec![],
        };
        let sol = problem.solve_coordinate_descent(&[]);
        assert_eq!(sol.period, 4.0);
        assert!((sol.objective - 8.0).abs() < 1e-9);
    }

    #[test]
    fn buffers_align_two_separated_ranges() {
        // Two paths with centers 0 and 4; the second path's source buffer
        // can shift its range by -2..2 in 0.5 steps. Perfect alignment:
        // shift path 2 down by 2 to center 2... but T can also move. The
        // optimum is objective ~0 when centers can meet: center2 + x = 2
        // with x = -2, T = 2... path1 center 0 unshiftable, so T = 0 and
        // path2 shifted to 4 - 2 = 2 -> residual 2. Actually optimal:
        // T=0+e? Let's just check exact == descent.
        let problem = AlignmentProblem {
            paths: vec![path(0.0, None, None), path(4.0, Some(0), None)],
            buffers: vec![buf(-2.0, 2.0, 9)],
        };
        let exact = problem.solve_exact().expect("feasible");
        let fast = problem.solve_coordinate_descent(&[0.0]);
        assert!(
            (fast.objective - exact.objective).abs() < 1e-6,
            "fast {} vs exact {}",
            fast.objective,
            exact.objective
        );
        // Ranges can meet: path2 shifted to 2.0 (x=-2), T anywhere between
        // 0 and 2 gives objective 2.0; or T=0, x=-2 -> |0-0| + |0-2| = 2.
        assert!((exact.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn perfectly_alignable_ranges_reach_zero() {
        // Path centers 0 and 1; buffer on path 2 with exactly 1.0 reachable
        // shift: x = -1 aligns both at 0.
        let problem = AlignmentProblem {
            paths: vec![path(0.0, None, None), path(1.0, Some(0), None)],
            buffers: vec![buf(-2.0, 2.0, 5)],
        };
        let exact = problem.solve_exact().expect("feasible");
        assert!(exact.objective.abs() < 1e-7);
        let fast = problem.solve_coordinate_descent(&[0.0]);
        assert!(fast.objective.abs() < 1e-7);
        assert!(problem.is_feasible(&fast.buffer_values, 1e-9));
    }

    #[test]
    fn shared_buffer_couples_paths() {
        // Buffer 0 is the SINK of path A (center 5) and the SOURCE of path
        // B (center 5): raising x shifts A down and B up — they separate.
        // Optimal x = 0.
        let problem = AlignmentProblem {
            paths: vec![path(5.0, None, Some(0)), path(5.0, Some(0), None)],
            buffers: vec![buf(-1.0, 1.0, 5)],
        };
        let exact = problem.solve_exact().expect("feasible");
        assert!(exact.objective.abs() < 1e-7);
        assert!((exact.buffer_values[0]).abs() < 1e-9);
    }

    #[test]
    fn hold_bounds_restrict_shifts() {
        // Path B (center 8, source buffer) wants x = -2 to align with
        // center 6, but hold requires x >= -0.5.
        let problem = AlignmentProblem {
            paths: vec![
                path(6.0, None, None),
                AlignPath {
                    center: 8.0,
                    weight: 1.0,
                    source_buffer: Some(0),
                    sink_buffer: None,
                    hold_lower_bound: Some(-0.5),
                },
            ],
            buffers: vec![buf(-2.0, 2.0, 9)],
        };
        let exact = problem.solve_exact().expect("feasible");
        let fast = problem.solve_coordinate_descent(&[0.0]);
        // Best: x = -0.5 -> centers 6 and 7.5, objective 1.5.
        assert!((exact.objective - 1.5).abs() < 1e-6);
        assert!((fast.objective - 1.5).abs() < 1e-6);
        assert!(fast.buffer_values[0] >= -0.5 - 1e-9);
    }

    #[test]
    fn sorted_center_weights_prioritize_middle() {
        let centers = [10.0, 0.0, 5.0, 20.0, 15.0];
        let w = sorted_center_weights(&centers, 1000.0, 1.0);
        // Sorted: 0, 5, 10, 15, 20 -> middle is 10.
        assert_eq!(w[0], 1000.0); // center 10.0
        assert_eq!(w[2], 999.0); // center 5
        assert_eq!(w[4], 999.0); // center 15
        assert_eq!(w[1], 998.0); // center 0
        assert_eq!(w[3], 998.0); // center 20
        assert!(sorted_center_weights(&[], 10.0, 1.0).is_empty());
    }

    #[test]
    fn weights_never_drop_below_kd() {
        let centers: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let w = sorted_center_weights(&centers, 10.0, 1.0);
        assert!(w.iter().all(|&x| x >= 1.0));
    }

    #[test]
    fn descent_matches_exact_on_random_instances() {
        let mut state = 0x77_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 100.0
        };
        let mut worse = 0;
        let cases = 25;
        for _case in 0..cases {
            let nb = 1 + (next() as usize) % 2; // 1-2 buffers
            let buffers: Vec<BufferVar> = (0..nb).map(|_| buf(-2.0, 2.0, 9)).collect();
            let np = 2 + (next() as usize) % 3;
            let paths: Vec<AlignPath> = (0..np)
                .map(|_| {
                    let which = (next() * 10.0) as usize % 3;
                    let b = (next() as usize) % nb;
                    let (src, snk) = match which {
                        0 => (Some(b), None),
                        1 => (None, Some(b)),
                        _ => (None, None),
                    };
                    path(next(), src, snk)
                })
                .collect();
            let problem = AlignmentProblem { paths, buffers };
            let exact = problem.solve_exact().expect("feasible without hold bounds");
            let fast = problem.solve_coordinate_descent(&vec![0.0; nb]);
            assert!(problem.is_feasible(&fast.buffer_values, 1e-9));
            // Coordinate descent is a heuristic: allow rare slightly-worse
            // outcomes but never infeasibility; the bulk must match.
            if fast.objective > exact.objective + 1e-6 {
                worse += 1;
            }
        }
        assert!(worse * 5 <= cases, "descent missed the optimum too often: {worse}/{cases}");
    }

    #[test]
    fn empty_problem_is_trivial() {
        let problem = AlignmentProblem { paths: vec![], buffers: vec![buf(-1.0, 1.0, 3)] };
        let sol = problem.solve_exact().expect("trivially feasible");
        assert_eq!(sol.objective, 0.0);
        let fast = problem.solve_coordinate_descent(&[0.5]);
        assert_eq!(fast.objective, 0.0);
    }
}
