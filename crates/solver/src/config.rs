//! Final buffer configuration from tested/predicted delay ranges
//! (paper §3.4, eqs. 15–18, plus the hold bounds of §3.5, eq. 21).
//!
//! After testing and statistical prediction, every required path has a
//! delay range `[l_ij, u_ij]`. A conservative configuration would assume
//! `D'_ij = u_ij`, but that over-rejects chips; the paper instead finds the
//! buffer setting that lets the *assumed* delays sit as close to their
//! upper bounds as possible:
//!
//! ```text
//! minimize xi
//! s.t.  T_d >= D'_ij + x_i - x_j          (16)
//!       l_ij <= D'_ij <= u_ij,  xi >= u_ij - D'_ij   (17)
//!       x in buffer ranges (discrete)      (18)
//!       x_i - x_j >= lambda_ij             (21)
//! ```
//!
//! For a fixed `xi` the assumed delays can be set to
//! `D'(xi) = max(l, u - xi)` without loss, leaving a pure system of
//! difference constraints over the buffer delays. On the uniform discrete
//! buffer lattice the constraints integerize exactly (difference systems
//! are totally unimodular), so [`ConfigProblem::solve`] binary-searches
//! `xi` and certifies each probe with Bellman–Ford — exact and fast. A
//! MILP formulation ([`ConfigProblem::solve_exact_milp`]) serves as the
//! oracle in tests.

use crate::align::BufferVar;
use crate::{ConstraintOp, DifferenceSystem, LinearProgram, MixedIntegerProgram};

/// One path's data in the configuration problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigPath {
    /// Lower delay bound `l_ij` from test/prediction.
    pub lower: f64,
    /// Upper delay bound `u_ij` from test/prediction.
    pub upper: f64,
    /// Index of the source buffer in the problem's buffer list, if any.
    pub source_buffer: Option<usize>,
    /// Index of the sink buffer, if any.
    pub sink_buffer: Option<usize>,
    /// Hold-time tuning bound `lambda_ij`, if applicable.
    pub hold_lower_bound: Option<f64>,
}

impl ConfigPath {
    fn shift(&self, x: &[f64]) -> f64 {
        let xi = self.source_buffer.map_or(0.0, |b| x[b]);
        let xj = self.sink_buffer.map_or(0.0, |b| x[b]);
        xi - xj
    }
}

/// The buffer-configuration problem for one chip.
#[derive(Debug, Clone, Default)]
pub struct ConfigProblem {
    /// The designated clock period `T_d`.
    pub clock_period: f64,
    /// Paths with their tested/predicted ranges.
    pub paths: Vec<ConfigPath>,
    /// The chip's tunable buffers.
    pub buffers: Vec<BufferVar>,
}

/// Solution of a configuration problem.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSolution {
    /// Optimal slack `xi` (max distance of assumed delays from their upper
    /// bounds).
    pub xi: f64,
    /// Discrete buffer values.
    pub buffer_values: Vec<f64>,
    /// The assumed delays `D'_ij = max(l_ij, u_ij - xi)`.
    pub assumed_delays: Vec<f64>,
}

impl ConfigProblem {
    /// Solves the configuration problem exactly on the discrete buffer
    /// lattice.
    ///
    /// Returns `None` if no discrete buffer assignment satisfies the setup
    /// constraints even with fully conservative slack (`xi` large enough
    /// that `D' = l`), i.e. the chip cannot be configured to run at
    /// `clock_period`.
    ///
    /// # Panics
    ///
    /// Panics if the buffers do not share a common step size (the uniform
    /// lattice assumption; the EffiTest flow always uses uniform buffer
    /// specs, per the paper's setup).
    pub fn solve(&self) -> Option<ConfigSolution> {
        let delta = self.common_step();
        // xi = 0: assumed delays at their upper bounds (best case).
        if let Some(x) = self.feasible(0.0, delta) {
            return Some(self.finish(0.0, x));
        }
        let xi_max = self.paths.iter().map(|p| p.upper - p.lower).fold(0.0_f64, f64::max);
        let x_at_max = self.feasible(xi_max, delta)?;
        // Binary search the smallest feasible xi.
        let mut lo = 0.0;
        let mut hi = xi_max;
        let mut best = x_at_max;
        let tol = (xi_max * 1e-9).max(1e-12);
        for _ in 0..64 {
            if hi - lo <= tol {
                break;
            }
            let mid = 0.5 * (lo + hi);
            match self.feasible(mid, delta) {
                Some(x) => {
                    hi = mid;
                    best = x;
                }
                None => lo = mid,
            }
        }
        Some(self.finish(hi, best))
    }

    /// Exact MILP formulation (test oracle): variables `xi`, `D'_p`, and
    /// integer buffer steps.
    ///
    /// Returns `None` if infeasible or the branch-and-bound node limit is
    /// hit.
    pub fn solve_exact_milp(&self) -> Option<ConfigSolution> {
        let nb = self.buffers.len();
        let np = self.paths.len();
        // Layout: 0 = xi, 1..=nb = k_b, nb+1..=nb+np = D'_p.
        let n_vars = 1 + nb + np;
        let mut lp = LinearProgram::new(n_vars);
        let mut obj = vec![0.0; n_vars];
        obj[0] = 1.0;
        lp.set_objective(&obj);
        lp.set_bounds(0, 0.0, f64::INFINITY);
        for (b, buf) in self.buffers.iter().enumerate() {
            lp.set_bounds(1 + b, 0.0, (buf.steps - 1) as f64);
        }
        for (p, path) in self.paths.iter().enumerate() {
            let dvar = 1 + nb + p;
            lp.set_bounds(dvar, path.lower, path.upper);
            // xi >= u - D'  ->  xi + D' >= u.
            lp.add_constraint(&[(0, 1.0), (dvar, 1.0)], ConstraintOp::Ge, path.upper);
            // T_d >= D' + x_i - x_j.
            let mut terms: Vec<(usize, f64)> = vec![(dvar, 1.0)];
            let mut rhs = self.clock_period;
            if let Some(b) = path.source_buffer {
                let buf = &self.buffers[b];
                terms.push((1 + b, buf.step_size()));
                rhs -= buf.min;
            }
            if let Some(b) = path.sink_buffer {
                let buf = &self.buffers[b];
                terms.push((1 + b, -buf.step_size()));
                rhs += buf.min;
            }
            lp.add_constraint(&terms, ConstraintOp::Le, rhs);
            // Hold bound.
            if let Some(lambda) = path.hold_lower_bound {
                let mut terms: Vec<(usize, f64)> = Vec::new();
                let mut rhs = lambda;
                if let Some(b) = path.source_buffer {
                    let buf = &self.buffers[b];
                    terms.push((1 + b, buf.step_size()));
                    rhs -= buf.min;
                }
                if let Some(b) = path.sink_buffer {
                    let buf = &self.buffers[b];
                    terms.push((1 + b, -buf.step_size()));
                    rhs += buf.min;
                }
                if terms.is_empty() {
                    if rhs > 1e-9 {
                        return None;
                    }
                } else {
                    lp.add_constraint(&terms, ConstraintOp::Ge, rhs);
                }
            }
        }
        let sol = MixedIntegerProgram::new(lp, (1..=nb).collect()).solve();
        if !sol.is_optimal() {
            return None;
        }
        let buffer_values: Vec<f64> = self
            .buffers
            .iter()
            .enumerate()
            .map(|(b, buf)| buf.value(sol.values[1 + b].round() as u32))
            .collect();
        let xi = sol.values[0];
        Some(ConfigSolution {
            xi,
            assumed_delays: self
                .paths
                .iter()
                .map(|p| p.upper.min(p.lower.max(p.upper - xi)))
                .collect(),
            buffer_values,
        })
    }

    /// Verifies that a buffer assignment works for assumed delays at slack
    /// `xi`: setup, hold, range, and grid membership.
    pub fn is_feasible_config(&self, x: &[f64], xi: f64, tol: f64) -> bool {
        if x.len() != self.buffers.len() {
            return false;
        }
        for (buf, &v) in self.buffers.iter().zip(x) {
            if v < buf.min - tol || v > buf.max + tol {
                return false;
            }
            if (buf.value(buf.nearest(v)) - v).abs() > tol {
                return false;
            }
        }
        self.paths.iter().all(|p| {
            let assumed = p.lower.max(p.upper - xi);
            let setup = assumed + p.shift(x) <= self.clock_period + tol;
            let hold = p.hold_lower_bound.is_none_or(|lambda| p.shift(x) >= lambda - tol);
            setup && hold
        })
    }

    /// Common buffer step size.
    ///
    /// # Panics
    ///
    /// Panics if buffers disagree (non-uniform lattices need the MILP).
    fn common_step(&self) -> f64 {
        let mut delta = None;
        for buf in &self.buffers {
            let d = buf.step_size();
            match delta {
                None => delta = Some(d),
                Some(prev) => assert!(
                    (prev - d).abs() < 1e-12,
                    "buffers must share a step size for the lattice solver"
                ),
            }
        }
        delta.unwrap_or(1.0)
    }

    /// Feasibility probe at slack `xi`: integerized difference constraints.
    fn feasible(&self, xi: f64, delta: f64) -> Option<Vec<f64>> {
        let nb = self.buffers.len();
        // Node 0 = reference (unbuffered flip-flops, k = 0); 1..=nb = k_b.
        let mut sys = DifferenceSystem::new(nb + 1);
        for (b, buf) in self.buffers.iter().enumerate() {
            // 0 <= k_b <= steps-1, relative to reference.
            sys.add_range(1 + b, 0, 0.0, (buf.steps - 1) as f64);
        }
        let tol = 1e-9;
        for path in &self.paths {
            let assumed = path.lower.max(path.upper - xi);
            // Setup: x_i - x_j <= T_d - D'.
            let margin = self.clock_period - assumed;
            let (ni, mi) = self.node_of(path.source_buffer);
            let (nj, mj) = self.node_of(path.sink_buffer);
            if delta > 0.0 {
                // delta*(k_i - k_j) <= margin - m_i + m_j.
                let w = ((margin - mi + mj) / delta + tol).floor();
                if ni == nj {
                    if w < 0.0 {
                        return None; // 0 <= negative: unconditionally infeasible
                    }
                } else {
                    sys.add(ni, nj, w);
                }
            } else if mi - mj > margin + tol {
                return None;
            }
            // Hold: x_i - x_j >= lambda  ->  k_j - k_i <= (m_i - m_j - lambda)/delta.
            if let Some(lambda) = path.hold_lower_bound {
                if delta > 0.0 {
                    let w = ((mi - mj - lambda) / delta + tol).floor();
                    if ni == nj {
                        if w < 0.0 {
                            return None;
                        }
                    } else {
                        sys.add(nj, ni, w);
                    }
                } else if mi - mj < lambda - tol {
                    return None;
                }
            }
        }
        let k = sys.solve_with_reference(0)?;
        Some(
            self.buffers
                .iter()
                .enumerate()
                .map(|(b, buf)| {
                    buf.value(k[1 + b].round().clamp(0.0, (buf.steps - 1) as f64) as u32)
                })
                .collect(),
        )
    }

    /// Maps a buffer option to its constraint-graph node and delay offset.
    fn node_of(&self, buffer: Option<usize>) -> (usize, f64) {
        match buffer {
            Some(b) => (1 + b, self.buffers[b].min),
            None => (0, 0.0),
        }
    }

    fn finish(&self, xi: f64, buffer_values: Vec<f64>) -> ConfigSolution {
        ConfigSolution {
            xi,
            assumed_delays: self.paths.iter().map(|p| p.lower.max(p.upper - xi)).collect(),
            buffer_values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(min: f64, max: f64, steps: u32) -> BufferVar {
        BufferVar { min, max, steps }
    }

    fn cpath(lower: f64, upper: f64, src: Option<usize>, snk: Option<usize>) -> ConfigPath {
        ConfigPath { lower, upper, source_buffer: src, sink_buffer: snk, hold_lower_bound: None }
    }

    #[test]
    fn unconstrained_chip_configures_with_zero_xi() {
        // All upper bounds below the period: xi = 0, x = anything valid.
        let problem = ConfigProblem {
            clock_period: 10.0,
            paths: vec![cpath(5.0, 8.0, Some(0), None), cpath(4.0, 9.0, None, Some(0))],
            buffers: vec![buf(-1.0, 1.0, 21)],
        };
        let sol = problem.solve().expect("feasible");
        assert_eq!(sol.xi, 0.0);
        assert!(problem.is_feasible_config(&sol.buffer_values, sol.xi, 1e-9));
        assert_eq!(sol.assumed_delays, vec![8.0, 9.0]);
    }

    #[test]
    fn buffers_rescue_over_budget_path() {
        // Path A: upper 12 > period 10, sink has a buffer: x_j = +2 gives
        // D + 0 - 2 <= 10. Path B keeps the same buffer as source:
        // upper 7.9: 7.9 + 2 <= 10 OK.
        let problem = ConfigProblem {
            clock_period: 10.0,
            paths: vec![cpath(11.0, 12.0, None, Some(0)), cpath(5.0, 7.9, Some(0), None)],
            buffers: vec![buf(-2.0, 2.0, 21)],
        };
        let sol = problem.solve().expect("feasible");
        assert!(sol.xi < 1e-6, "xi should be 0, got {}", sol.xi);
        assert!(sol.buffer_values[0] >= 2.0 - 1e-9);
        assert!(problem.is_feasible_config(&sol.buffer_values, sol.xi, 1e-9));
    }

    #[test]
    fn xi_grows_when_ranges_are_wide() {
        // One path, no buffers: upper 12 > period 10, lower 9 < 10: must
        // assume D' = 10 => xi = 2.
        let problem = ConfigProblem {
            clock_period: 10.0,
            paths: vec![cpath(9.0, 12.0, None, None)],
            buffers: vec![],
        };
        let sol = problem.solve().expect("feasible");
        assert!((sol.xi - 2.0).abs() < 1e-6, "xi = {}", sol.xi);
        assert!((sol.assumed_delays[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_when_lower_bound_exceeds_period() {
        let problem = ConfigProblem {
            clock_period: 10.0,
            paths: vec![cpath(11.0, 12.0, None, None)],
            buffers: vec![],
        };
        assert!(problem.solve().is_none());
        assert!(problem.solve_exact_milp().is_none());
    }

    #[test]
    fn hold_bounds_constrain_the_rescue() {
        // As in buffers_rescue_over_budget_path, but the sink-buffered path
        // carries a hold bound x_i - x_j >= -1 (x_i = 0) => x_j <= 1, so
        // the rescue is capped and xi must absorb the rest.
        let problem = ConfigProblem {
            clock_period: 10.0,
            paths: vec![ConfigPath {
                lower: 9.0,
                upper: 12.0,
                source_buffer: None,
                sink_buffer: Some(0),
                hold_lower_bound: Some(-1.0),
            }],
            buffers: vec![buf(-2.0, 2.0, 21)],
        };
        let sol = problem.solve().expect("feasible");
        // Best: x_j = 1 => D' <= 11 => xi = 1.
        assert!((sol.xi - 1.0).abs() < 1e-6, "xi = {}", sol.xi);
        assert!(sol.buffer_values[0] <= 1.0 + 1e-9);
        assert!(problem.is_feasible_config(&sol.buffer_values, sol.xi, 1e-9));
    }

    #[test]
    fn lattice_matches_milp_oracle() {
        let mut state = 0xFACE_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 100.0
        };
        for _case in 0..20 {
            let nb = 1 + (next() as usize) % 2;
            let buffers: Vec<BufferVar> = (0..nb).map(|_| buf(-1.0, 1.0, 9)).collect();
            let np = 1 + (next() as usize) % 4;
            let period = 10.0;
            let paths: Vec<ConfigPath> = (0..np)
                .map(|_| {
                    let lower = 6.0 + next() * 0.45; // 6.0 .. 10.5
                    let upper = lower + next() * 0.3;
                    let which = (next() * 10.0) as usize % 3;
                    let b = (next() as usize) % nb;
                    let (src, snk) = match which {
                        0 => (Some(b), None),
                        1 => (None, Some(b)),
                        _ => (None, None),
                    };
                    cpath(lower, upper, src, snk)
                })
                .collect();
            let problem = ConfigProblem { clock_period: period, paths, buffers };
            let lattice = problem.solve();
            let milp = problem.solve_exact_milp();
            match (lattice, milp) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!((a.xi - b.xi).abs() < 1e-5, "lattice xi {} vs milp xi {}", a.xi, b.xi);
                    assert!(problem.is_feasible_config(&a.buffer_values, a.xi + 1e-9, 1e-6));
                }
                (a, b) => panic!("feasibility disagreement: lattice {a:?} vs milp {b:?}"),
            }
        }
    }

    #[test]
    fn assumed_delays_track_xi() {
        let problem = ConfigProblem {
            clock_period: 10.0,
            paths: vec![cpath(7.0, 12.0, None, Some(0)), cpath(8.0, 9.0, None, None)],
            buffers: vec![buf(-1.0, 1.0, 21)],
        };
        let sol = problem.solve().expect("feasible");
        for (p, d) in problem.paths.iter().zip(&sol.assumed_delays) {
            assert!(*d >= p.lower - 1e-9 && *d <= p.upper + 1e-9);
            assert!(p.upper - d <= sol.xi + 1e-6);
        }
    }

    #[test]
    fn empty_problem_is_trivially_feasible() {
        let problem =
            ConfigProblem { clock_period: 1.0, paths: vec![], buffers: vec![buf(-1.0, 1.0, 5)] };
        let sol = problem.solve().expect("feasible");
        assert_eq!(sol.xi, 0.0);
        assert_eq!(sol.buffer_values.len(), 1);
    }

    #[test]
    fn both_endpoints_buffered() {
        // Path needs 3 units of borrowing: x_i - x_j <= -3 with each
        // buffer limited to +-2: achievable (x_i=-2, x_j=+1 or similar).
        let problem = ConfigProblem {
            clock_period: 10.0,
            paths: vec![cpath(12.5, 13.0, Some(0), Some(1))],
            buffers: vec![buf(-2.0, 2.0, 21), buf(-2.0, 2.0, 21)],
        };
        let sol = problem.solve().expect("feasible");
        assert!(sol.xi < 1e-6);
        let shift = sol.buffer_values[0] - sol.buffer_values[1];
        assert!(shift <= -3.0 + 1e-9);
    }
}
