/// A system of difference constraints `x_u - x_v <= w`, solved by
/// Bellman–Ford.
///
/// Difference-constraint systems are the backbone of clock-skew scheduling:
/// the paper's buffer-configuration problem (eqs. 15–18) reduces, for a
/// fixed slack `xi`, to exactly such a system over the buffer delays (with
/// one *reference* node pinned to zero representing all unbuffered
/// flip-flops). Feasibility is equivalent to the constraint graph having no
/// negative cycle, and the shortest-path distances provide a concrete
/// solution. With integer weights the distances are integral, which makes
/// the discrete buffer-step lattice exactly solvable with no branching.
///
/// # Example
///
/// ```
/// use effitest_solver::DifferenceSystem;
///
/// // x1 - x0 <= 3, x0 - x1 <= -1  (i.e. 1 <= x1 - x0 <= 3)
/// let mut sys = DifferenceSystem::new(2);
/// sys.add(1, 0, 3.0);
/// sys.add(0, 1, -1.0);
/// let x = sys.solve().expect("feasible");
/// let d = x[1] - x[0];
/// assert!(d >= 1.0 - 1e-9 && d <= 3.0 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DifferenceSystem {
    n: usize,
    /// Edges `(u, v, w)` meaning `x_u - x_v <= w`.
    edges: Vec<(usize, usize, f64)>,
}

impl DifferenceSystem {
    /// Creates a system over `n` variables with no constraints.
    pub fn new(n: usize) -> Self {
        DifferenceSystem { n, edges: Vec::new() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.edges.len()
    }

    /// Adds the constraint `x_u - x_v <= w`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add(&mut self, u: usize, v: usize, w: f64) {
        assert!(u < self.n && v < self.n, "variable out of range");
        self.edges.push((u, v, w));
    }

    /// Adds the two-sided constraint `lo <= x_u - x_v <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `lo > hi`.
    pub fn add_range(&mut self, u: usize, v: usize, lo: f64, hi: f64) {
        assert!(lo <= hi, "empty range constraint");
        self.add(u, v, hi); // x_u - x_v <= hi
        self.add(v, u, -lo); // x_v - x_u <= -lo
    }

    /// Solves the system.
    ///
    /// Returns a satisfying assignment (the Bellman–Ford shortest-path
    /// distances from a virtual source, so the *componentwise maximal*
    /// solution relative to an arbitrary offset), or `None` if a negative
    /// cycle makes the system infeasible.
    ///
    /// Any uniform shift of the returned vector is also a solution; callers
    /// that pin a reference variable should subtract its value.
    pub fn solve(&self) -> Option<Vec<f64>> {
        // Virtual source: distance 0 to every node; implemented by starting
        // all distances at 0.
        let mut dist = vec![0.0_f64; self.n];
        for round in 0..=self.n {
            let mut changed = false;
            for &(u, v, w) in &self.edges {
                // Edge v -> u with weight w: dist[u] > dist[v] + w relaxes.
                let cand = dist[v] + w;
                if cand < dist[u] - 1e-12 {
                    dist[u] = cand;
                    changed = true;
                }
            }
            if !changed {
                return Some(dist);
            }
            if round == self.n {
                return None; // still relaxing after n rounds: negative cycle
            }
        }
        Some(dist)
    }

    /// Solves with a designated reference variable pinned to zero.
    ///
    /// Returns the shifted solution, or `None` if infeasible.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is out of range.
    pub fn solve_with_reference(&self, reference: usize) -> Option<Vec<f64>> {
        assert!(reference < self.n);
        let mut x = self.solve()?;
        let shift = x[reference];
        for v in &mut x {
            *v -= shift;
        }
        Some(x)
    }

    /// Verifies a candidate assignment against all constraints.
    pub fn is_satisfied(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.n && self.edges.iter().all(|&(u, v, w)| x[u] - x[v] <= w + tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_feasible_chain() {
        // x1 <= x0 + 1, x2 <= x1 + 1, x0 <= x2 - 2 => all tight.
        let mut sys = DifferenceSystem::new(3);
        sys.add(1, 0, 1.0);
        sys.add(2, 1, 1.0);
        sys.add(0, 2, -2.0);
        let x = sys.solve().expect("feasible");
        assert!(sys.is_satisfied(&x, 1e-9));
        assert!((x[2] - x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn negative_cycle_is_infeasible() {
        // x1 - x0 <= -1 and x0 - x1 <= -1: sum says 0 <= -2.
        let mut sys = DifferenceSystem::new(2);
        sys.add(1, 0, -1.0);
        sys.add(0, 1, -1.0);
        assert!(sys.solve().is_none());
    }

    #[test]
    fn add_range_behaves() {
        let mut sys = DifferenceSystem::new(2);
        sys.add_range(1, 0, 2.0, 5.0);
        let x = sys.solve().expect("feasible");
        let d = x[1] - x[0];
        assert!((2.0..=5.0).contains(&(d + 1e-12).min(5.0).max(d)));
        assert!(sys.is_satisfied(&x, 1e-9));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn add_range_rejects_inverted() {
        let mut sys = DifferenceSystem::new(2);
        sys.add_range(1, 0, 5.0, 2.0);
    }

    #[test]
    fn reference_pinning() {
        let mut sys = DifferenceSystem::new(3);
        sys.add_range(1, 0, 1.0, 1.0);
        sys.add_range(2, 0, -3.0, -3.0);
        let x = sys.solve_with_reference(0).expect("feasible");
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 1.0).abs() < 1e-9);
        assert!((x[2] + 3.0).abs() < 1e-9);
    }

    #[test]
    fn integer_weights_give_integer_solutions() {
        let mut sys = DifferenceSystem::new(4);
        sys.add(1, 0, 3.0);
        sys.add(2, 1, -2.0);
        sys.add(3, 2, 5.0);
        sys.add(0, 3, -1.0);
        let x = sys.solve_with_reference(0).expect("feasible");
        for v in &x {
            assert_eq!(*v, v.round(), "non-integral component {v}");
        }
        assert!(sys.is_satisfied(&x, 1e-9));
    }

    #[test]
    fn unconstrained_system_is_trivially_feasible() {
        let sys = DifferenceSystem::new(5);
        let x = sys.solve().expect("feasible");
        assert_eq!(x, vec![0.0; 5]);
    }

    #[test]
    fn buffer_configuration_shape() {
        // Two buffers + reference node 0. Box: -2 <= x <= 2 (vs node 0);
        // setup: x1 - x2 <= -1 (path needs 1 unit of borrowed time);
        // hold: x1 - x2 >= -3.
        let mut sys = DifferenceSystem::new(3);
        sys.add_range(1, 0, -2.0, 2.0);
        sys.add_range(2, 0, -2.0, 2.0);
        sys.add(1, 2, -1.0); // setup
        sys.add(2, 1, 3.0); // hold (x2 - x1 <= 3)
        let x = sys.solve_with_reference(0).expect("feasible");
        assert!(x[1] - x[2] <= -1.0 + 1e-9);
        assert!(x[2] - x[1] <= 3.0 + 1e-9);
        assert!(x[1].abs() <= 2.0 + 1e-9 && x[2].abs() <= 2.0 + 1e-9);
    }

    #[test]
    fn solution_is_componentwise_maximal_shape() {
        // For x1 - x0 <= 2 the solver (from a zero source) keeps both at 0;
        // pinning x0 = 0 gives x1 = 0 which satisfies but is not forced to
        // the bound — check satisfaction, not tightness.
        let mut sys = DifferenceSystem::new(2);
        sys.add(1, 0, 2.0);
        let x = sys.solve_with_reference(0).expect("feasible");
        assert!(sys.is_satisfied(&x, 0.0));
    }

    #[test]
    fn randomized_against_assignment_check() {
        let mut state = 0x1357_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 21) as f64 - 10.0
        };
        for _case in 0..50 {
            let n = 6;
            let mut sys = DifferenceSystem::new(n);
            for _ in 0..10 {
                let u = (next().abs() as usize) % n;
                let v = (next().abs() as usize) % n;
                if u != v {
                    sys.add(u, v, next());
                }
            }
            if let Some(x) = sys.solve() {
                assert!(sys.is_satisfied(&x, 1e-9), "solver returned invalid assignment");
            }
            // Infeasible outcomes are fine; nothing to verify without an
            // independent oracle (covered by the negative-cycle test).
        }
    }
}
