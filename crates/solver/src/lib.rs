//! Hand-rolled optimization substrate for the EffiTest reproduction.
//!
//! The paper solves its two per-chip optimization problems — delay-range
//! alignment during test (eqs. 7–14) and final buffer configuration
//! (eqs. 15–18) — with Gurobi. This crate replaces Gurobi with exact,
//! dependency-free solvers sized for those problems:
//!
//! * [`LinearProgram`] — a dense two-phase primal simplex with Bland's
//!   rule, supporting `<=`/`>=`/`=` rows and per-variable bounds.
//! * [`MixedIntegerProgram`] — branch-and-bound over the simplex for the
//!   integer buffer-step variables.
//! * [`DifferenceSystem`] — systems of difference constraints
//!   `x_u - x_v <= w` solved by Bellman–Ford; with integer weights the
//!   solution is integral, which makes discrete buffer configuration exact
//!   without branching.
//! * [`weighted_median`] — the 1-D weighted-L1 minimizer used by the fast
//!   alignment heuristic.
//! * [`align`] — the paper's test-alignment problem: choose a clock period
//!   `T` and temporary buffer values aligning the delay-range centers
//!   (exact MILP formulation and a weighted-median coordinate-descent
//!   heuristic that matches it on practical instances).
//! * [`config`] — the paper's buffer-configuration problem: binary search
//!   on the slack `xi` over integerized difference constraints.
//!
//! # Example
//!
//! ```
//! use effitest_solver::{ConstraintOp, LinearProgram, LpStatus};
//!
//! // maximize x + y  s.t.  x + 2y <= 4, 3x + y <= 6, x,y >= 0
//! let mut lp = LinearProgram::new(2);
//! lp.set_objective(&[1.0, 1.0]);
//! lp.set_maximize(true);
//! lp.add_constraint(&[(0, 1.0), (1, 2.0)], ConstraintOp::Le, 4.0);
//! lp.add_constraint(&[(0, 3.0), (1, 1.0)], ConstraintOp::Le, 6.0);
//! let sol = lp.solve();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! // Optimal vertex: x = 1.6, y = 1.2.
//! assert!((sol.objective - 2.8).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod align;
pub mod config;
mod diffcon;
mod lp;
mod median;
mod milp;

pub use diffcon::DifferenceSystem;
pub use lp::{ConstraintOp, LinearProgram, LpSolution, LpStatus, SimplexWorkspace};
pub use median::{weighted_l1, weighted_median, weighted_median_in_place};
pub use milp::{MilpSolution, MilpStatus, MilpWorkspace, MixedIntegerProgram, DEFAULT_NODE_LIMIT};
