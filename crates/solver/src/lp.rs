use std::fmt;

/// Relation of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `sum a_j x_j <= b`
    Le,
    /// `sum a_j x_j >= b`
    Ge,
    /// `sum a_j x_j == b`
    Eq,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Solution of a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Solve outcome; `values`/`objective` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Optimal variable values (original variable space).
    pub values: Vec<f64>,
    /// Optimal objective value (in the user's orientation: the maximum if
    /// maximizing, the minimum otherwise).
    pub objective: f64,
}

/// A linear program over `n` variables with per-variable bounds.
///
/// Variables default to `[0, +inf)`; bounds may be any combination of
/// finite/infinite (use [`f64::NEG_INFINITY`] / [`f64::INFINITY`]). The
/// solver is a dense two-phase primal simplex with a Dantzig pivot rule and
/// a Bland fallback for anti-cycling — entirely adequate for the
/// EffiTest-sized instances (tens of variables) and exact up to round-off.
///
/// See the crate-level docs for an example.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n: usize,
    objective: Vec<f64>,
    maximize: bool,
    rows: Vec<RawRow>,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

/// One user-level constraint: sparse terms, operator, right-hand side.
type RawRow = (Vec<(usize, f64)>, ConstraintOp, f64);

const EPS: f64 = 1e-9;
const MAX_ITER: usize = 20_000;

impl LinearProgram {
    /// Creates an LP over `n` variables, all bounded to `[0, +inf)`, with a
    /// zero minimization objective.
    pub fn new(n: usize) -> Self {
        LinearProgram {
            n,
            objective: vec![0.0; n],
            maximize: false,
            rows: Vec::new(),
            lower: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficients (dense, length `n`).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the variable count.
    pub fn set_objective(&mut self, coeffs: &[f64]) {
        assert_eq!(coeffs.len(), self.n, "objective length must match variable count");
        self.objective.copy_from_slice(coeffs);
    }

    /// Sets one objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) {
        self.objective[var] = coeff;
    }

    /// Chooses maximization (`true`) or minimization (`false`, default).
    pub fn set_maximize(&mut self, maximize: bool) {
        self.maximize = maximize;
    }

    /// `true` if the objective is maximized.
    pub fn is_maximize(&self) -> bool {
        self.maximize
    }

    /// Adds a constraint row given as sparse `(variable, coefficient)`
    /// terms.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], op: ConstraintOp, rhs: f64) {
        for &(j, _) in terms {
            assert!(j < self.n, "constraint references variable {j} of {}", self.n);
        }
        self.rows.push((terms.to_vec(), op, rhs));
    }

    /// Sets the bounds of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or `lo > hi`.
    pub fn set_bounds(&mut self, var: usize, lo: f64, hi: f64) {
        assert!(var < self.n);
        assert!(lo <= hi, "lower bound exceeds upper bound");
        self.lower[var] = lo;
        self.upper[var] = hi;
    }

    /// Marks a variable as free (unbounded both ways).
    pub fn set_free(&mut self, var: usize) {
        self.set_bounds(var, f64::NEG_INFINITY, f64::INFINITY);
    }

    /// Current bounds of a variable.
    pub fn bounds(&self, var: usize) -> (f64, f64) {
        (self.lower[var], self.upper[var])
    }

    /// Solves the LP with a throwaway workspace.
    ///
    /// Hot paths that solve many LPs (branch-and-bound nodes, per-iteration
    /// alignment problems) should hold a [`SimplexWorkspace`] and call
    /// [`SimplexWorkspace::solve`] instead: the workspace keeps every
    /// solver buffer alive between solves, so repeated solves allocate
    /// nothing and return bitwise-identical results to this cold path.
    pub fn solve(&self) -> LpSolution {
        SimplexWorkspace::new().solve(self).clone()
    }

    /// Resets this program in place to `n` fresh variables (all bounded to
    /// `[0, +inf)`, zero minimization objective, no constraints), keeping
    /// the existing allocations.
    ///
    /// This is the rebuild entry point for long-lived problem instances
    /// that change shape between solves (e.g. the alignment MILP as paths
    /// retire from a batch).
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.objective.clear();
        self.objective.resize(n, 0.0);
        self.maximize = false;
        self.rows.clear();
        self.lower.clear();
        self.lower.resize(n, 0.0);
        self.upper.clear();
        self.upper.resize(n, f64::INFINITY);
    }

    /// Checks a candidate point for feasibility within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n {
            return false;
        }
        for ((&xj, &lo), &hi) in x.iter().zip(&self.lower).zip(&self.upper) {
            if xj < lo - tol || xj > hi + tol {
                return false;
            }
        }
        for (terms, op, rhs) in &self.rows {
            let lhs: f64 = terms.iter().map(|&(j, a)| a * x[j]).sum();
            let ok = match op {
                ConstraintOp::Le => lhs <= rhs + tol,
                ConstraintOp::Ge => lhs >= rhs - tol,
                ConstraintOp::Eq => (lhs - rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Objective value at a point (user orientation).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(&c, &v)| c * v).sum()
    }
}

impl fmt::Display for LinearProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {} vars, {} rows",
            if self.maximize { "max" } else { "min" },
            self.n,
            self.rows.len()
        )
    }
}

/// Mapping from an original variable to its standard-form representation.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = y + shift` with `y >= 0`.
    Shifted { col: usize, shift: f64 },
    /// `x = shift - y` with `y >= 0` (upper-bounded-only variables).
    Flipped { col: usize, shift: f64 },
    /// `x = y_plus - y_minus`, both `>= 0` (free variables).
    Split { plus: usize, minus: usize },
}

/// Per-row standard-form metadata computed before the tableau is filled.
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    /// Right-hand side after bound shifts, before sign normalization.
    rhs_adj: f64,
    /// Slack column of this row (`usize::MAX` for equality rows).
    slack: usize,
    /// `true` if the row is negated to make the rhs non-negative.
    negate: bool,
    /// Artificial column (`usize::MAX` when the slack seeds the basis).
    art: usize,
}

/// Reusable dense-simplex state: the tableau, basis, cost row, and every
/// scratch vector a solve needs, all owned by the workspace and recycled
/// between solves.
///
/// # Warm starts and determinism
///
/// A workspace solve rebuilds the standard-form tableau **in place** from
/// the [`LinearProgram`] it is given — no allocation happens once the
/// buffers have grown to the largest problem seen — and then replays the
/// same deterministic pivot rule a cold solve uses. Warm solves are
/// therefore *bitwise identical* to cold solves on the same program: the
/// warm start saves the allocation and deallocation traffic (the dominant
/// cost of the EffiTest-sized instances, which pivot only a handful of
/// times), never the pivoting itself, so no stale state can leak from one
/// solve into the next. The property suite in `tests/proptests.rs` pins
/// this equivalence on randomized solve sequences.
///
/// # Example
///
/// ```
/// use effitest_solver::{ConstraintOp, LinearProgram, LpStatus, SimplexWorkspace};
///
/// let mut ws = SimplexWorkspace::new();
/// let mut lp = LinearProgram::new(1);
/// lp.set_objective(&[1.0]);
/// for rhs in [3.0, 5.0] {
///     lp.set_bounds(0, rhs, f64::INFINITY); // only bounds change...
///     let sol = ws.solve(&lp); // ...so the workspace is reused as-is
///     assert_eq!(sol.status, LpStatus::Optimal);
///     assert_eq!(sol.values[0], rhs);
/// }
/// ```
#[derive(Debug)]
pub struct SimplexWorkspace {
    /// Variable mapping back to the original space.
    var_map: Vec<VarMap>,
    /// Synthetic `x_j <= hi` rows for two-sided-bounded variables.
    upper_rows: Vec<(usize, f64)>,
    /// Per-row standard-form metadata.
    meta: Vec<RowMeta>,
    /// Flat row-major tableau: `m` rows of `stride` entries (all columns
    /// plus the rhs in the last slot).
    tab: Vec<f64>,
    /// Basis: column index of the basic variable of each row.
    basis: Vec<usize>,
    /// Reduced-cost row (phase 1, then phase 2).
    cost: Vec<f64>,
    /// Standard-form variable values at extraction.
    std_vals: Vec<f64>,
    /// The solution of the most recent solve.
    solution: LpSolution,
    stride: usize,
    m: usize,
    /// Structural + slack columns (artificials appended after).
    n_cols: usize,
    /// All columns including artificials.
    total_cols: usize,
}

impl Default for SimplexWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SimplexWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SimplexWorkspace {
            var_map: Vec::new(),
            upper_rows: Vec::new(),
            meta: Vec::new(),
            tab: Vec::new(),
            basis: Vec::new(),
            cost: Vec::new(),
            std_vals: Vec::new(),
            solution: LpSolution { status: LpStatus::Optimal, values: Vec::new(), objective: 0.0 },
            stride: 0,
            m: 0,
            n_cols: 0,
            total_cols: 0,
        }
    }

    /// Solves `lp`, reusing this workspace's buffers.
    ///
    /// The returned reference borrows the workspace; clone it (or copy the
    /// fields out) if the solution must outlive the next solve. Results
    /// are bitwise identical to [`LinearProgram::solve`].
    pub fn solve(&mut self, lp: &LinearProgram) -> &LpSolution {
        self.build(lp);
        self.run(lp);
        &self.solution
    }

    /// The most recent solution (untouched until the next [`solve`](Self::solve)).
    pub fn last_solution(&self) -> &LpSolution {
        &self.solution
    }

    fn fail(&mut self, lp: &LinearProgram, status: LpStatus) {
        self.solution.status = status;
        self.solution.values.clear();
        self.solution.values.resize(lp.n, 0.0);
        self.solution.objective = match status {
            LpStatus::Unbounded => {
                if lp.maximize {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                }
            }
            _ => 0.0,
        };
    }

    /// Rebuilds the standard-form tableau in place from `lp`.
    fn build(&mut self, lp: &LinearProgram) {
        // --- Map variables to non-negative standard-form columns. ---
        self.var_map.clear();
        self.upper_rows.clear();
        let mut n_struct = 0;
        for j in 0..lp.n {
            let (lo, hi) = (lp.lower[j], lp.upper[j]);
            let vm = if lo.is_finite() {
                let col = n_struct;
                n_struct += 1;
                if hi.is_finite() {
                    self.upper_rows.push((j, hi));
                }
                VarMap::Shifted { col, shift: lo }
            } else if hi.is_finite() {
                let col = n_struct;
                n_struct += 1;
                VarMap::Flipped { col, shift: hi }
            } else {
                let plus = n_struct;
                let minus = n_struct + 1;
                n_struct += 2;
                VarMap::Split { plus, minus }
            };
            self.var_map.push(vm);
        }

        let m = lp.rows.len() + self.upper_rows.len();
        let n_slack = lp.rows.iter().filter(|(_, op, _)| *op != ConstraintOp::Eq).count()
            + self.upper_rows.len();
        let n_cols = n_struct + n_slack;

        // --- Pass 1: per-row metadata (shifted rhs, slack/basis seeding,
        // artificial assignment), which fixes the tableau width before any
        // coefficient is written. ---
        self.meta.clear();
        let mut slack_cursor = n_struct;
        let mut n_art = 0;
        for r in 0..m {
            let (terms, op, rhs) = split_row(lp, &self.upper_rows, r);
            let mut rhs_adj = rhs;
            for &(j, a) in terms.iter() {
                match self.var_map[j] {
                    VarMap::Shifted { shift, .. } | VarMap::Flipped { shift, .. } => {
                        rhs_adj -= a * shift;
                    }
                    VarMap::Split { .. } => {}
                }
            }
            let slack = if op == ConstraintOp::Eq {
                usize::MAX
            } else {
                let c = slack_cursor;
                slack_cursor += 1;
                c
            };
            let negate = rhs_adj < 0.0;
            // A slack column that ends up `+1` after normalization seeds
            // the basis; everything else needs a phase-1 artificial.
            let seeded = match op {
                ConstraintOp::Le => !negate,
                ConstraintOp::Ge => negate,
                ConstraintOp::Eq => false,
            };
            let art = if seeded {
                usize::MAX
            } else {
                let c = n_cols + n_art;
                n_art += 1;
                c
            };
            self.meta.push(RowMeta { rhs_adj, slack, negate, art });
        }

        let total_cols = n_cols + n_art;
        let stride = total_cols + 1;
        self.m = m;
        self.n_cols = n_cols;
        self.total_cols = total_cols;
        self.stride = stride;

        // --- Pass 2: fill the tableau. ---
        self.tab.clear();
        self.tab.resize(m * stride, 0.0);
        self.basis.clear();
        self.basis.resize(m, usize::MAX);
        for r in 0..m {
            let (terms, op, _) = split_row(lp, &self.upper_rows, r);
            let RowMeta { rhs_adj, slack, negate, art } = self.meta[r];
            let row = &mut self.tab[r * stride..(r + 1) * stride];
            for &(j, a) in terms.iter() {
                match self.var_map[j] {
                    VarMap::Shifted { col, .. } => row[col] += a,
                    VarMap::Flipped { col, .. } => row[col] -= a,
                    VarMap::Split { plus, minus } => {
                        row[plus] += a;
                        row[minus] -= a;
                    }
                }
            }
            if slack != usize::MAX {
                row[slack] = if op == ConstraintOp::Le { 1.0 } else { -1.0 };
            }
            row[total_cols] = rhs_adj;
            if negate {
                for v in row.iter_mut() {
                    *v = -*v;
                }
            }
            if art != usize::MAX {
                row[art] = 1.0;
                self.basis[r] = art;
            } else {
                self.basis[r] = slack;
            }
        }
    }

    /// Runs phase 1 (when artificials exist) and phase 2, extracting the
    /// solution into `self.solution`.
    fn run(&mut self, lp: &LinearProgram) {
        let (m, stride, n_cols, total_cols) = (self.m, self.stride, self.n_cols, self.total_cols);

        if total_cols > n_cols {
            // Phase-1 objective: minimize the sum of artificials.
            self.cost.clear();
            self.cost.resize(stride, 0.0);
            for c in n_cols..total_cols {
                self.cost[c] = 1.0;
            }
            // Price out the basic artificials.
            for r in 0..m {
                if self.basis[r] >= n_cols {
                    let row = &self.tab[r * stride..(r + 1) * stride];
                    for (cv, &rv) in self.cost.iter_mut().zip(row) {
                        *cv -= rv;
                    }
                }
            }
            if !run_simplex(&mut self.tab, &mut self.basis, stride, m, &mut self.cost, total_cols) {
                // Phase 1 of a feasibility objective cannot be unbounded;
                // treat as numerical failure -> infeasible.
                return self.fail(lp, LpStatus::Infeasible);
            }
            let phase1_obj = -self.cost[total_cols];
            if phase1_obj > 1e-7 {
                return self.fail(lp, LpStatus::Infeasible);
            }
            // Drive any remaining artificial out of the basis.
            for r in 0..m {
                if self.basis[r] >= n_cols {
                    let row = &self.tab[r * stride..(r + 1) * stride];
                    let pivot_col = (0..n_cols).find(|&c| row[c].abs() > EPS);
                    if let Some(c) = pivot_col {
                        pivot(&mut self.tab, &mut self.basis, stride, m, r, c);
                    }
                    // If the whole row is zero over structural columns the
                    // row is redundant; leaving the artificial basic at
                    // value 0 is harmless.
                }
            }
        }

        // --- Phase 2. We always minimize internally. ---
        self.cost.clear();
        self.cost.resize(stride, 0.0);
        let sign = if lp.maximize { -1.0 } else { 1.0 };
        let mut const_shift = 0.0;
        for j in 0..lp.n {
            let c_orig = sign * lp.objective[j];
            match self.var_map[j] {
                VarMap::Shifted { col, shift } => {
                    self.cost[col] += c_orig;
                    const_shift += c_orig * shift;
                }
                VarMap::Flipped { col, shift } => {
                    self.cost[col] -= c_orig;
                    const_shift += c_orig * shift;
                }
                VarMap::Split { plus, minus } => {
                    self.cost[plus] += c_orig;
                    self.cost[minus] -= c_orig;
                }
            }
        }
        // Forbid artificials from re-entering.
        for c in n_cols..total_cols {
            self.cost[c] = f64::INFINITY;
        }
        // Price out the current basis.
        for r in 0..m {
            let b = self.basis[r];
            if b < total_cols && self.cost[b] != 0.0 && self.cost[b].is_finite() {
                let factor = self.cost[b];
                let row = &self.tab[r * stride..(r + 1) * stride];
                for (cv, &rv) in self.cost.iter_mut().zip(row) {
                    *cv -= factor * rv;
                }
            }
        }

        if !run_simplex(&mut self.tab, &mut self.basis, stride, m, &mut self.cost, total_cols) {
            return self.fail(lp, LpStatus::Unbounded);
        }

        // --- Extract the solution. ---
        self.std_vals.clear();
        self.std_vals.resize(total_cols, 0.0);
        for r in 0..m {
            let b = self.basis[r];
            if b < total_cols {
                self.std_vals[b] = self.tab[r * stride + total_cols];
            }
        }
        self.solution.values.clear();
        for vm in &self.var_map {
            self.solution.values.push(match *vm {
                VarMap::Shifted { col, shift } => self.std_vals[col] + shift,
                VarMap::Flipped { col, shift } => shift - self.std_vals[col],
                VarMap::Split { plus, minus } => self.std_vals[plus] - self.std_vals[minus],
            });
        }
        let min_obj = -self.cost[total_cols] + const_shift;
        self.solution.objective = if lp.maximize { -min_obj } else { min_obj };
        self.solution.status = LpStatus::Optimal;
    }
}

/// Expanded row `r` of the standard form: the user's rows first, then the
/// synthetic upper-bound rows.
fn split_row<'a>(
    lp: &'a LinearProgram,
    upper_rows: &'a [(usize, f64)],
    r: usize,
) -> (UpperOrUser<'a>, ConstraintOp, f64) {
    if r < lp.rows.len() {
        let (terms, op, rhs) = &lp.rows[r];
        (UpperOrUser::User(terms), *op, *rhs)
    } else {
        let (j, hi) = upper_rows[r - lp.rows.len()];
        (UpperOrUser::Upper([(j, 1.0)]), ConstraintOp::Le, hi)
    }
}

/// Either a borrowed user constraint row or an inline `x_j <= hi` row.
enum UpperOrUser<'a> {
    User(&'a [(usize, f64)]),
    Upper([(usize, f64); 1]),
}

impl UpperOrUser<'_> {
    fn iter(&self) -> std::slice::Iter<'_, (usize, f64)> {
        match self {
            UpperOrUser::User(terms) => terms.iter(),
            UpperOrUser::Upper(one) => one.iter(),
        }
    }
}

/// Runs the simplex on the tableau with the given cost row. Returns
/// `false` on unboundedness.
fn run_simplex(
    tab: &mut [f64],
    basis: &mut [usize],
    stride: usize,
    m: usize,
    cost: &mut [f64],
    total_cols: usize,
) -> bool {
    for iter in 0..MAX_ITER {
        // Entering column: most negative reduced cost (Dantzig), Bland
        // after a while to break cycles.
        let bland = iter > MAX_ITER / 2;
        let mut enter = None;
        let mut best = -EPS;
        for (c, &rc) in cost.iter().enumerate().take(total_cols) {
            if !rc.is_finite() {
                continue;
            }
            if bland {
                if rc < -EPS {
                    enter = Some(c);
                    break;
                }
            } else if rc < best {
                best = rc;
                enter = Some(c);
            }
        }
        let Some(enter) = enter else {
            return true; // optimal
        };
        // Leaving row: min ratio test (Bland tie-break on basis index).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..m {
            let a = tab[r * stride + enter];
            if a > EPS {
                let ratio = tab[r * stride + total_cols] / a;
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave.is_some_and(|lr| basis[r] < basis[lr]));
                if better {
                    best_ratio = ratio;
                    leave = Some(r);
                }
            }
        }
        let Some(leave) = leave else {
            return false; // unbounded
        };
        pivot(tab, basis, stride, m, leave, enter);
        // Update cost row.
        let factor = cost[enter];
        if factor != 0.0 {
            let row = &tab[leave * stride..(leave + 1) * stride];
            for (cv, &v) in cost.iter_mut().zip(row) {
                if v != 0.0 && cv.is_finite() {
                    *cv -= factor * v;
                }
            }
        }
    }
    // Iteration cap reached: treat as optimal-enough (should not happen
    // on EffiTest-sized problems).
    true
}

/// Pivots on `(row, col)`: makes `col` basic in `row`.
fn pivot(tab: &mut [f64], basis: &mut [usize], stride: usize, m: usize, row: usize, col: usize) {
    let pivot = tab[row * stride + col];
    debug_assert!(pivot.abs() > 1e-12, "zero pivot");
    for c in 0..stride {
        tab[row * stride + c] /= pivot;
    }
    for r in 0..m {
        if r == row {
            continue;
        }
        let factor = tab[r * stride + col];
        if factor != 0.0 {
            // Disjoint pivot/target rows, borrowed via a single split.
            let (pr, tr) = if r < row {
                let (head, tail) = tab.split_at_mut(row * stride);
                (&tail[..stride], &mut head[r * stride..(r + 1) * stride])
            } else {
                let (head, tail) = tab.split_at_mut(r * stride);
                (&head[row * stride..(row + 1) * stride], &mut tail[..stride])
            };
            for (tv, &v) in tr.iter_mut().zip(pr) {
                if v != 0.0 {
                    *tv -= factor * v;
                }
            }
            tab[r * stride + col] = 0.0; // kill round-off
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn maximization_textbook() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; opt (2, 6) = 36.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[3.0, 5.0]);
        lp.set_maximize(true);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(&[(1, 2.0)], ConstraintOp::Le, 12.0);
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], ConstraintOp::Le, 18.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 36.0);
        assert_close(sol.values[0], 2.0);
        assert_close(sol.values[1], 6.0);
        assert!(lp.is_feasible(&sol.values, 1e-9));
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x + 2y >= 6, x,y >= 0; opt (2,2)=10.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[2.0, 3.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
        lp.add_constraint(&[(0, 1.0), (1, 2.0)], ConstraintOp::Ge, 6.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 10.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1 -> (3, 2), obj 5.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], ConstraintOp::Eq, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[0], 3.0);
        assert_close(sol.values[1], 2.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 5.0);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 3.0);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.set_maximize(true);
        // x >= 0, maximize x: unbounded.
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn free_variables_go_negative() {
        // min x s.t. x >= -7 as a row, x free -> x = -7.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.set_free(0);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, -7.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[0], -7.0);
    }

    #[test]
    fn variable_bounds_are_respected() {
        // max x + y with x in [1, 3], y in [-2, 2], x + y <= 4.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.set_maximize(true);
        lp.set_bounds(0, 1.0, 3.0);
        lp.set_bounds(1, -2.0, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 4.0);
        assert!(sol.values[0] <= 3.0 + 1e-9);
        assert!(sol.values[1] <= 2.0 + 1e-9);
        assert!(sol.values[0] >= 1.0 - 1e-9);
    }

    #[test]
    fn upper_bounded_only_variable() {
        // min -x with x <= 5 (lower unbounded): optimum at x = 5.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[-1.0]);
        lp.set_bounds(0, f64::NEG_INFINITY, 5.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[0], 5.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -2 with x, y >= 0: minimize y -> y = 2, x = 0.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[0.0, 1.0]);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], ConstraintOp::Le, -2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn l1_alignment_shape() {
        // The alignment LP shape: min e1 + e2 with e_p >= +-(T - c_p),
        // T free. Optimal T is any weighted median; objective = |c1 - c2|.
        let (c1, c2) = (3.0, 9.0);
        let mut lp = LinearProgram::new(3); // T, e1, e2
        lp.set_free(0);
        lp.set_objective(&[0.0, 1.0, 1.0]);
        for (e, c) in [(1_usize, c1), (2, c2)] {
            lp.add_constraint(&[(0, 1.0), (e, -1.0)], ConstraintOp::Le, c);
            lp.add_constraint(&[(0, -1.0), (e, -1.0)], ConstraintOp::Le, -c);
        }
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 6.0);
        assert!(sol.values[0] >= c1 - 1e-7 && sol.values[0] <= c2 + 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example; must terminate via Bland fallback.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.set_maximize(true);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(&[(1, 1.0)], ConstraintOp::Le, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn redundant_equalities_are_fine() {
        // x + y = 2 stated twice.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 2.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0); // x=2, y=0
    }

    #[test]
    fn objective_at_matches_reported_objective() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[4.0, -1.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Le, 3.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(lp.objective_at(&sol.values), sol.objective);
    }
}
