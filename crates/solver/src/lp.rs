use std::fmt;

/// Relation of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `sum a_j x_j <= b`
    Le,
    /// `sum a_j x_j >= b`
    Ge,
    /// `sum a_j x_j == b`
    Eq,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Solution of a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Solve outcome; `values`/`objective` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Optimal variable values (original variable space).
    pub values: Vec<f64>,
    /// Optimal objective value (in the user's orientation: the maximum if
    /// maximizing, the minimum otherwise).
    pub objective: f64,
}

/// A linear program over `n` variables with per-variable bounds.
///
/// Variables default to `[0, +inf)`; bounds may be any combination of
/// finite/infinite (use [`f64::NEG_INFINITY`] / [`f64::INFINITY`]). The
/// solver is a dense two-phase primal simplex with a Dantzig pivot rule and
/// a Bland fallback for anti-cycling — entirely adequate for the
/// EffiTest-sized instances (tens of variables) and exact up to round-off.
///
/// See the crate-level docs for an example.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n: usize,
    objective: Vec<f64>,
    maximize: bool,
    rows: Vec<RawRow>,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

/// One user-level constraint: sparse terms, operator, right-hand side.
type RawRow = (Vec<(usize, f64)>, ConstraintOp, f64);

const EPS: f64 = 1e-9;
const MAX_ITER: usize = 20_000;

impl LinearProgram {
    /// Creates an LP over `n` variables, all bounded to `[0, +inf)`, with a
    /// zero minimization objective.
    pub fn new(n: usize) -> Self {
        LinearProgram {
            n,
            objective: vec![0.0; n],
            maximize: false,
            rows: Vec::new(),
            lower: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficients (dense, length `n`).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the variable count.
    pub fn set_objective(&mut self, coeffs: &[f64]) {
        assert_eq!(coeffs.len(), self.n, "objective length must match variable count");
        self.objective.copy_from_slice(coeffs);
    }

    /// Sets one objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) {
        self.objective[var] = coeff;
    }

    /// Chooses maximization (`true`) or minimization (`false`, default).
    pub fn set_maximize(&mut self, maximize: bool) {
        self.maximize = maximize;
    }

    /// `true` if the objective is maximized.
    pub fn is_maximize(&self) -> bool {
        self.maximize
    }

    /// Adds a constraint row given as sparse `(variable, coefficient)`
    /// terms.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], op: ConstraintOp, rhs: f64) {
        for &(j, _) in terms {
            assert!(j < self.n, "constraint references variable {j} of {}", self.n);
        }
        self.rows.push((terms.to_vec(), op, rhs));
    }

    /// Sets the bounds of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or `lo > hi`.
    pub fn set_bounds(&mut self, var: usize, lo: f64, hi: f64) {
        assert!(var < self.n);
        assert!(lo <= hi, "lower bound exceeds upper bound");
        self.lower[var] = lo;
        self.upper[var] = hi;
    }

    /// Marks a variable as free (unbounded both ways).
    pub fn set_free(&mut self, var: usize) {
        self.set_bounds(var, f64::NEG_INFINITY, f64::INFINITY);
    }

    /// Current bounds of a variable.
    pub fn bounds(&self, var: usize) -> (f64, f64) {
        (self.lower[var], self.upper[var])
    }

    /// Solves the LP.
    pub fn solve(&self) -> LpSolution {
        Tableau::build(self).solve(self)
    }

    /// Checks a candidate point for feasibility within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n {
            return false;
        }
        for ((&xj, &lo), &hi) in x.iter().zip(&self.lower).zip(&self.upper) {
            if xj < lo - tol || xj > hi + tol {
                return false;
            }
        }
        for (terms, op, rhs) in &self.rows {
            let lhs: f64 = terms.iter().map(|&(j, a)| a * x[j]).sum();
            let ok = match op {
                ConstraintOp::Le => lhs <= rhs + tol,
                ConstraintOp::Ge => lhs >= rhs - tol,
                ConstraintOp::Eq => (lhs - rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Objective value at a point (user orientation).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(&c, &v)| c * v).sum()
    }
}

impl fmt::Display for LinearProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {} vars, {} rows",
            if self.maximize { "max" } else { "min" },
            self.n,
            self.rows.len()
        )
    }
}

/// Mapping from an original variable to its standard-form representation.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = y + shift` with `y >= 0`.
    Shifted { col: usize, shift: f64 },
    /// `x = shift - y` with `y >= 0` (upper-bounded-only variables).
    Flipped { col: usize, shift: f64 },
    /// `x = y_plus - y_minus`, both `>= 0` (free variables).
    Split { plus: usize, minus: usize },
}

/// Dense simplex tableau in standard equality form.
struct Tableau {
    /// Rows: coefficients over all columns plus rhs (last entry).
    rows: Vec<Vec<f64>>,
    /// Basis: column index of the basic variable of each row.
    basis: Vec<usize>,
    /// Total structural + slack columns (artificials appended after).
    n_cols: usize,
    /// Variable mapping back to the original space.
    var_map: Vec<VarMap>,
    /// Columns of artificial variables (phase 1 only).
    artificial_cols: Vec<usize>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        // --- Map variables to non-negative standard-form columns. ---
        let mut var_map = Vec::with_capacity(lp.n);
        let mut n_struct = 0;
        let mut extra_rows: Vec<RawRow> = Vec::new();
        for j in 0..lp.n {
            let (lo, hi) = (lp.lower[j], lp.upper[j]);
            let vm = if lo.is_finite() {
                let col = n_struct;
                n_struct += 1;
                if hi.is_finite() {
                    // y <= hi - lo
                    extra_rows.push((vec![(j, 1.0)], ConstraintOp::Le, hi));
                }
                VarMap::Shifted { col, shift: lo }
            } else if hi.is_finite() {
                let col = n_struct;
                n_struct += 1;
                VarMap::Flipped { col, shift: hi }
            } else {
                let plus = n_struct;
                let minus = n_struct + 1;
                n_struct += 2;
                VarMap::Split { plus, minus }
            };
            var_map.push(vm);
        }

        // --- Expand rows into standard-form coefficients. ---
        // Each row: dense over structural columns, then op and adjusted rhs.
        let all_rows: Vec<&RawRow> = lp.rows.iter().chain(extra_rows.iter()).collect();
        let m = all_rows.len();

        // Slack columns: one per inequality row.
        let n_slack = all_rows.iter().filter(|(_, op, _)| *op != ConstraintOp::Eq).count();
        let n_cols = n_struct + n_slack;

        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut slack_cursor = n_struct;

        for (r, (terms, op, rhs)) in all_rows.iter().enumerate() {
            let mut row = vec![0.0; n_cols + 1];
            let mut rhs_adj = *rhs;
            for &(j, a) in terms {
                match var_map[j] {
                    VarMap::Shifted { col, shift } => {
                        row[col] += a;
                        rhs_adj -= a * shift;
                    }
                    VarMap::Flipped { col, shift } => {
                        row[col] -= a;
                        rhs_adj -= a * shift;
                    }
                    VarMap::Split { plus, minus } => {
                        row[plus] += a;
                        row[minus] -= a;
                    }
                }
            }
            let mut slack_col = None;
            match op {
                ConstraintOp::Le => {
                    row[slack_cursor] = 1.0;
                    slack_col = Some(slack_cursor);
                    slack_cursor += 1;
                }
                ConstraintOp::Ge => {
                    row[slack_cursor] = -1.0;
                    slack_col = Some(slack_cursor);
                    slack_cursor += 1;
                }
                ConstraintOp::Eq => {}
            }
            row[n_cols] = rhs_adj;
            // Normalize to rhs >= 0.
            if row[n_cols] < 0.0 {
                for v in row.iter_mut() {
                    *v = -*v;
                }
            }
            // If the slack column survived normalization with +1, it can
            // seed the basis.
            if let Some(sc) = slack_col {
                if row[sc] > 0.5 {
                    basis[r] = sc;
                }
            }
            rows.push(row);
        }

        Tableau { rows, basis, n_cols, var_map, artificial_cols: Vec::new() }
    }

    fn solve(mut self, lp: &LinearProgram) -> LpSolution {
        let m = self.rows.len();
        // --- Phase 1: add artificials where no basic column exists. ---
        let mut art_cols = Vec::new();
        for r in 0..m {
            if self.basis[r] == usize::MAX {
                let col = self.n_cols + art_cols.len();
                art_cols.push(col);
                self.basis[r] = col;
            }
        }
        let total_cols = self.n_cols + art_cols.len();
        for (r, row) in self.rows.iter_mut().enumerate() {
            let rhs = row.pop().expect("row has rhs");
            row.resize(total_cols, 0.0);
            row.push(rhs);
            if self.basis[r] >= self.n_cols {
                let col = self.basis[r];
                row[col] = 1.0;
            }
        }
        self.artificial_cols = art_cols;

        if !self.artificial_cols.is_empty() {
            // Phase-1 objective: minimize the sum of artificials.
            let mut cost = vec![0.0; total_cols + 1];
            for &c in &self.artificial_cols {
                cost[c] = 1.0;
            }
            // Price out the basic artificials.
            for r in 0..m {
                if self.basis[r] >= self.n_cols {
                    for (cv, &rv) in cost.iter_mut().zip(&self.rows[r]) {
                        *cv -= rv;
                    }
                }
            }
            if !self.run_simplex(&mut cost, total_cols) {
                // Phase 1 of a feasibility objective cannot be unbounded;
                // treat as numerical failure -> infeasible.
                return LpSolution {
                    status: LpStatus::Infeasible,
                    values: vec![0.0; lp.n],
                    objective: 0.0,
                };
            }
            let phase1_obj = -cost[total_cols];
            if phase1_obj > 1e-7 {
                return LpSolution {
                    status: LpStatus::Infeasible,
                    values: vec![0.0; lp.n],
                    objective: 0.0,
                };
            }
            // Drive any remaining artificial out of the basis.
            for r in 0..m {
                if self.basis[r] >= self.n_cols {
                    let pivot_col = (0..self.n_cols).find(|&c| self.rows[r][c].abs() > EPS);
                    if let Some(c) = pivot_col {
                        self.pivot(r, c);
                    }
                    // If the whole row is zero over structural columns the
                    // row is redundant; leaving the artificial basic at
                    // value 0 is harmless.
                }
            }
        }

        // --- Phase 2. ---
        // Build the phase-2 cost row in standard-form columns. We always
        // minimize internally.
        let total_cols = self.n_cols + self.artificial_cols.len();
        let mut cost = vec![0.0; total_cols + 1];
        let sign = if lp.maximize { -1.0 } else { 1.0 };
        let mut const_shift = 0.0;
        for j in 0..lp.n {
            let c_orig = sign * lp.objective[j];
            match self.var_map[j] {
                VarMap::Shifted { col, shift } => {
                    cost[col] += c_orig;
                    const_shift += c_orig * shift;
                }
                VarMap::Flipped { col, shift } => {
                    cost[col] -= c_orig;
                    const_shift += c_orig * shift;
                }
                VarMap::Split { plus, minus } => {
                    cost[plus] += c_orig;
                    cost[minus] -= c_orig;
                }
            }
        }
        // Forbid artificials from re-entering.
        for &c in &self.artificial_cols {
            cost[c] = f64::INFINITY;
        }
        // Price out the current basis.
        for r in 0..self.rows.len() {
            let b = self.basis[r];
            if b < cost.len() - 1 && cost[b] != 0.0 && cost[b].is_finite() {
                let factor = cost[b];
                for (cv, &rv) in cost.iter_mut().zip(&self.rows[r]) {
                    *cv -= factor * rv;
                }
            }
        }

        if !self.run_simplex(&mut cost, total_cols) {
            return LpSolution {
                status: LpStatus::Unbounded,
                values: vec![0.0; lp.n],
                objective: if lp.maximize { f64::INFINITY } else { f64::NEG_INFINITY },
            };
        }

        // --- Extract the solution. ---
        let mut std_vals = vec![0.0; total_cols];
        for r in 0..self.rows.len() {
            let b = self.basis[r];
            if b < total_cols {
                std_vals[b] = self.rows[r][total_cols];
            }
        }
        let mut values = vec![0.0; lp.n];
        for (vj, vm) in values.iter_mut().zip(&self.var_map) {
            *vj = match *vm {
                VarMap::Shifted { col, shift } => std_vals[col] + shift,
                VarMap::Flipped { col, shift } => shift - std_vals[col],
                VarMap::Split { plus, minus } => std_vals[plus] - std_vals[minus],
            };
        }
        let min_obj = -cost[total_cols] + const_shift;
        let objective = if lp.maximize { -min_obj } else { min_obj };
        LpSolution { status: LpStatus::Optimal, values, objective }
    }

    /// Runs the simplex on the current tableau with the given cost row.
    /// Returns `false` on unboundedness.
    fn run_simplex(&mut self, cost: &mut [f64], total_cols: usize) -> bool {
        let m = self.rows.len();
        for iter in 0..MAX_ITER {
            // Entering column: most negative reduced cost (Dantzig), Bland
            // after a while to break cycles.
            let bland = iter > MAX_ITER / 2;
            let mut enter = None;
            let mut best = -EPS;
            for (c, &rc) in cost.iter().enumerate().take(total_cols) {
                if !rc.is_finite() {
                    continue;
                }
                if bland {
                    if rc < -EPS {
                        enter = Some(c);
                        break;
                    }
                } else if rc < best {
                    best = rc;
                    enter = Some(c);
                }
            }
            let Some(enter) = enter else {
                return true; // optimal
            };
            // Leaving row: min ratio test (Bland tie-break on basis index).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..m {
                let a = self.rows[r][enter];
                if a > EPS {
                    let ratio = self.rows[r][total_cols] / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|lr| self.basis[r] < self.basis[lr]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(leave) = leave else {
                return false; // unbounded
            };
            self.pivot(leave, enter);
            // Update cost row.
            let factor = cost[enter];
            if factor != 0.0 {
                for (cv, &v) in cost.iter_mut().zip(&self.rows[leave]) {
                    if v != 0.0 && cv.is_finite() {
                        *cv -= factor * v;
                    }
                }
            }
        }
        // Iteration cap reached: treat as optimal-enough (should not happen
        // on EffiTest-sized problems).
        true
    }

    /// Pivots on `(row, col)`: makes `col` basic in `row`.
    fn pivot(&mut self, row: usize, col: usize) {
        let m = self.rows.len();
        let width = self.rows[row].len();
        let pivot = self.rows[row][col];
        debug_assert!(pivot.abs() > 1e-12, "zero pivot");
        for c in 0..width {
            self.rows[row][c] /= pivot;
        }
        for r in 0..m {
            if r == row {
                continue;
            }
            let factor = self.rows[r][col];
            if factor != 0.0 {
                for c in 0..width {
                    let v = self.rows[row][c];
                    if v != 0.0 {
                        self.rows[r][c] -= factor * v;
                    }
                }
                self.rows[r][col] = 0.0; // kill round-off
            }
        }
        self.basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn maximization_textbook() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; opt (2, 6) = 36.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[3.0, 5.0]);
        lp.set_maximize(true);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(&[(1, 2.0)], ConstraintOp::Le, 12.0);
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], ConstraintOp::Le, 18.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 36.0);
        assert_close(sol.values[0], 2.0);
        assert_close(sol.values[1], 6.0);
        assert!(lp.is_feasible(&sol.values, 1e-9));
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x + 2y >= 6, x,y >= 0; opt (2,2)=10.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[2.0, 3.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
        lp.add_constraint(&[(0, 1.0), (1, 2.0)], ConstraintOp::Ge, 6.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 10.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1 -> (3, 2), obj 5.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], ConstraintOp::Eq, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[0], 3.0);
        assert_close(sol.values[1], 2.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 5.0);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 3.0);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.set_maximize(true);
        // x >= 0, maximize x: unbounded.
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn free_variables_go_negative() {
        // min x s.t. x >= -7 as a row, x free -> x = -7.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.set_free(0);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, -7.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[0], -7.0);
    }

    #[test]
    fn variable_bounds_are_respected() {
        // max x + y with x in [1, 3], y in [-2, 2], x + y <= 4.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.set_maximize(true);
        lp.set_bounds(0, 1.0, 3.0);
        lp.set_bounds(1, -2.0, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 4.0);
        assert!(sol.values[0] <= 3.0 + 1e-9);
        assert!(sol.values[1] <= 2.0 + 1e-9);
        assert!(sol.values[0] >= 1.0 - 1e-9);
    }

    #[test]
    fn upper_bounded_only_variable() {
        // min -x with x <= 5 (lower unbounded): optimum at x = 5.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[-1.0]);
        lp.set_bounds(0, f64::NEG_INFINITY, 5.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[0], 5.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -2 with x, y >= 0: minimize y -> y = 2, x = 0.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[0.0, 1.0]);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], ConstraintOp::Le, -2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn l1_alignment_shape() {
        // The alignment LP shape: min e1 + e2 with e_p >= +-(T - c_p),
        // T free. Optimal T is any weighted median; objective = |c1 - c2|.
        let (c1, c2) = (3.0, 9.0);
        let mut lp = LinearProgram::new(3); // T, e1, e2
        lp.set_free(0);
        lp.set_objective(&[0.0, 1.0, 1.0]);
        for (e, c) in [(1_usize, c1), (2, c2)] {
            lp.add_constraint(&[(0, 1.0), (e, -1.0)], ConstraintOp::Le, c);
            lp.add_constraint(&[(0, -1.0), (e, -1.0)], ConstraintOp::Le, -c);
        }
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 6.0);
        assert!(sol.values[0] >= c1 - 1e-7 && sol.values[0] <= c2 + 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example; must terminate via Bland fallback.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.set_maximize(true);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(&[(1, 1.0)], ConstraintOp::Le, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn redundant_equalities_are_fine() {
        // x + y = 2 stated twice.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 2.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0); // x=2, y=0
    }

    #[test]
    fn objective_at_matches_reported_objective() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[4.0, -1.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Le, 3.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(lp.objective_at(&sol.values), sol.objective);
    }
}
