/// Weighted median: a minimizer of `sum_i w_i * |t - x_i|` over `t`.
///
/// Returns the smallest point `x_k` such that the cumulative weight up to
/// and including `x_k` reaches half the total weight — a classic exact
/// minimizer of the weighted L1 objective. This is the inner kernel of the
/// coordinate-descent alignment solver: with all buffer values fixed, the
/// optimal test clock period `T` is the weighted median of the shifted
/// range centers (paper eq. 7 reduced to one dimension).
///
/// Returns `None` for empty input or non-positive total weight.
///
/// # Example
///
/// ```
/// use effitest_solver::weighted_median;
///
/// let m = weighted_median(&[(1.0, 1.0), (10.0, 1.0), (100.0, 3.0)]).unwrap();
/// assert_eq!(m, 100.0); // the heavy point dominates
/// ```
pub fn weighted_median(points: &[(f64, f64)]) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    let total: f64 = points.iter().map(|&(_, w)| w.max(0.0)).sum();
    if total <= 0.0 {
        return None;
    }
    let mut sorted: Vec<(f64, f64)> = points.iter().map(|&(x, w)| (x, w.max(0.0))).collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let half = total / 2.0;
    let mut acc = 0.0;
    for &(x, w) in &sorted {
        acc += w;
        if acc >= half - 1e-15 {
            return Some(x);
        }
    }
    Some(sorted.last().expect("non-empty").0)
}

/// In-place, allocation-free variant of [`weighted_median`]: sorts `points`
/// by position (an unstable sort — ties between equal positions may land in
/// any order, which cannot change the returned median value) and scans the
/// cumulative weight.
///
/// This is the inner kernel of the warm-started
/// [`AlignmentEngine`](crate::align::AlignmentEngine): the engine refills
/// one scratch buffer per candidate move instead of allocating two vectors
/// per call the way the borrowing variant must.
///
/// Returns `None` for empty input or non-positive total weight. Negative
/// weights are treated as zero, exactly as in [`weighted_median`].
pub fn weighted_median_in_place(points: &mut [(f64, f64)]) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    let total: f64 = points.iter().map(|&(_, w)| w.max(0.0)).sum();
    if total <= 0.0 {
        return None;
    }
    points.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let half = total / 2.0;
    let mut acc = 0.0;
    for &(x, w) in points.iter() {
        acc += w.max(0.0);
        if acc >= half - 1e-15 {
            return Some(x);
        }
    }
    Some(points.last().expect("non-empty").0)
}

/// Evaluates the weighted L1 objective `sum_i w_i * |t - x_i|`.
pub fn weighted_l1(t: f64, points: &[(f64, f64)]) -> f64 {
    points.iter().map(|&(x, w)| w * (t - x).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_median_of_odd_set() {
        let pts: Vec<(f64, f64)> = [5.0, 1.0, 3.0].iter().map(|&x| (x, 1.0)).collect();
        assert_eq!(weighted_median(&pts), Some(3.0));
    }

    #[test]
    fn heavy_weight_dominates() {
        let m = weighted_median(&[(0.0, 1.0), (10.0, 100.0)]).unwrap();
        assert_eq!(m, 10.0);
    }

    #[test]
    fn empty_and_zero_weight() {
        assert_eq!(weighted_median(&[]), None);
        assert_eq!(weighted_median(&[(1.0, 0.0)]), None);
        // Negative weights are clamped to zero.
        assert_eq!(weighted_median(&[(1.0, -5.0), (2.0, 1.0)]), Some(2.0));
    }

    #[test]
    fn median_minimizes_objective() {
        let mut state = 0x42_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 100.0
        };
        for _case in 0..40 {
            let n = 1 + (next() as usize % 9);
            let pts: Vec<(f64, f64)> = (0..n).map(|_| (next() - 5.0, next() + 0.1)).collect();
            let m = weighted_median(&pts).unwrap();
            let best = weighted_l1(m, &pts);
            // No candidate point does better (the optimum of a piecewise
            // linear convex function is at a breakpoint).
            for &(x, _) in &pts {
                assert!(
                    best <= weighted_l1(x, &pts) + 1e-9,
                    "median {m} not optimal vs breakpoint {x}"
                );
            }
            // And nearby perturbations do not improve.
            assert!(best <= weighted_l1(m + 0.01, &pts) + 1e-12);
            assert!(best <= weighted_l1(m - 0.01, &pts) + 1e-12);
        }
    }

    #[test]
    fn single_point_is_its_own_median() {
        assert_eq!(weighted_median(&[(7.5, 2.0)]), Some(7.5));
    }
}
