use crate::{LinearProgram, LpStatus};

#[cfg(test)]
use crate::ConstraintOp;

/// Solution of a [`MixedIntegerProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// `true` if an integer-feasible optimum was found.
    pub optimal: bool,
    /// Variable values (integer variables are exactly integral).
    pub values: Vec<f64>,
    /// Objective value in the user's orientation.
    pub objective: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

/// A mixed-integer linear program: a [`LinearProgram`] plus a set of
/// variables required to take integer values.
///
/// Solved by depth-first branch and bound over the simplex relaxation with
/// best-objective pruning. The paper's alignment problem (eqs. 7–14) has a
/// handful of 20-step buffer variables per test batch, well inside this
/// solver's comfort zone; it also serves as the exactness oracle for the
/// fast heuristics in [`crate::align`] and [`crate::config`].
///
/// # Example
///
/// ```
/// use effitest_solver::{ConstraintOp, LinearProgram, MixedIntegerProgram};
///
/// // max x + y, x,y integer, 2x + 3y <= 8, x,y >= 0 -> (4, 0) = 4... with
/// // x <= 3: best integer point is (1, 2) or (3, 0); objective 3.
/// let mut lp = LinearProgram::new(2);
/// lp.set_objective(&[1.0, 1.0]);
/// lp.set_maximize(true);
/// lp.set_bounds(0, 0.0, 3.0);
/// lp.add_constraint(&[(0, 2.0), (1, 3.0)], ConstraintOp::Le, 8.0);
/// let milp = MixedIntegerProgram::new(lp, vec![0, 1]);
/// let sol = milp.solve();
/// assert!(sol.optimal);
/// assert!((sol.objective - 3.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone)]
pub struct MixedIntegerProgram {
    lp: LinearProgram,
    integer_vars: Vec<usize>,
    node_limit: usize,
}

const INT_TOL: f64 = 1e-6;

impl MixedIntegerProgram {
    /// Wraps an LP with integrality requirements on `integer_vars`.
    ///
    /// # Panics
    ///
    /// Panics if any integer variable index is out of range.
    pub fn new(lp: LinearProgram, integer_vars: Vec<usize>) -> Self {
        for &v in &integer_vars {
            assert!(v < lp.num_vars(), "integer variable {v} out of range");
        }
        MixedIntegerProgram { lp, integer_vars, node_limit: 200_000 }
    }

    /// Caps the number of branch-and-bound nodes (default 200 000).
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// The underlying relaxation.
    pub fn lp(&self) -> &LinearProgram {
        &self.lp
    }

    /// Solves the MILP.
    ///
    /// Returns `optimal == false` if the problem is infeasible or the node
    /// limit was exhausted before proving optimality (in which case the
    /// best incumbent found so far, if any, is returned).
    pub fn solve(&self) -> MilpSolution {
        let maximize = self.lp.is_maximize();
        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut nodes = 0_usize;
        let mut stack: Vec<LinearProgram> = vec![self.lp.clone()];

        while let Some(node_lp) = stack.pop() {
            if nodes >= self.node_limit {
                break;
            }
            nodes += 1;
            let relax = node_lp.solve();
            match relax.status {
                LpStatus::Infeasible => continue,
                LpStatus::Unbounded => {
                    // An unbounded relaxation at the root means the MILP is
                    // unbounded (or the bounding box is missing); deeper
                    // nodes inherit the issue. Give up on this branch.
                    continue;
                }
                LpStatus::Optimal => {}
            }
            // Prune by bound.
            if let Some((incumbent, _)) = &best {
                let worse = if maximize {
                    relax.objective <= *incumbent + 1e-12
                } else {
                    relax.objective >= *incumbent - 1e-12
                };
                if worse {
                    continue;
                }
            }
            // Find the most fractional integer variable.
            let mut branch_var = None;
            let mut worst_frac = INT_TOL;
            for &v in &self.integer_vars {
                let val = relax.values[v];
                let frac = (val - val.round()).abs();
                if frac > worst_frac {
                    worst_frac = frac;
                    branch_var = Some(v);
                }
            }
            match branch_var {
                None => {
                    // Integer feasible: round the integer vars exactly.
                    let mut vals = relax.values.clone();
                    for &v in &self.integer_vars {
                        vals[v] = vals[v].round();
                    }
                    let obj = self.lp.objective_at(&vals);
                    let better = match &best {
                        None => true,
                        Some((inc, _)) => {
                            if maximize {
                                obj > *inc + 1e-12
                            } else {
                                obj < *inc - 1e-12
                            }
                        }
                    };
                    if better {
                        best = Some((obj, vals));
                    }
                }
                Some(v) => {
                    let val = relax.values[v];
                    let floor = val.floor();
                    let (lo, hi) = node_lp.bounds(v);
                    // Down branch: v <= floor.
                    if floor >= lo - 1e-9 {
                        let mut down = node_lp.clone();
                        down.set_bounds(v, lo, floor.min(hi));
                        stack.push(down);
                    }
                    // Up branch: v >= floor + 1.
                    if floor + 1.0 <= hi + 1e-9 {
                        let mut up = node_lp.clone();
                        up.set_bounds(v, (floor + 1.0).max(lo), hi);
                        stack.push(up);
                    }
                }
            }
        }

        match best {
            Some((objective, values)) => {
                MilpSolution { optimal: nodes < self.node_limit, values, objective, nodes }
            }
            None => MilpSolution {
                optimal: false,
                values: vec![0.0; self.lp.num_vars()],
                objective: 0.0,
                nodes,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knapsack_small() {
        // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, a,b,c in {0,1}.
        let mut lp = LinearProgram::new(3);
        lp.set_objective(&[5.0, 4.0, 3.0]);
        lp.set_maximize(true);
        for v in 0..3 {
            lp.set_bounds(v, 0.0, 1.0);
        }
        lp.add_constraint(&[(0, 2.0), (1, 3.0), (2, 1.0)], ConstraintOp::Le, 5.0);
        let sol = MixedIntegerProgram::new(lp, vec![0, 1, 2]).solve();
        assert!(sol.optimal);
        // a=1, c=1, b=0 -> 8; or a=1,b=1 -> 9 (2+3=5 fits!).
        assert!((sol.objective - 9.0).abs() < 1e-7);
        assert!((sol.values[0] - 1.0).abs() < 1e-7);
        assert!((sol.values[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn integer_rounding_differs_from_relaxation() {
        // max y s.t. 2y <= 7 -> relaxation 3.5, integer 3.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.set_maximize(true);
        lp.add_constraint(&[(0, 2.0)], ConstraintOp::Le, 7.0);
        let sol = MixedIntegerProgram::new(lp, vec![0]).solve();
        assert!(sol.optimal);
        assert!((sol.values[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // min x + y, x integer in [0,10], y continuous >= 0,
        // x + y >= 2.5 -> x = 0, y = 2.5 (cheaper than x = 3).
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.set_bounds(0, 0.0, 10.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 2.5);
        let sol = MixedIntegerProgram::new(lp, vec![0]).solve();
        assert!(sol.optimal);
        assert!((sol.objective - 2.5).abs() < 1e-7);
        assert_eq!(sol.values[0], sol.values[0].round());
    }

    #[test]
    fn infeasible_milp() {
        // x in {0,1}, x >= 2: infeasible.
        let mut lp = LinearProgram::new(1);
        lp.set_bounds(0, 0.0, 1.0);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 2.0);
        let sol = MixedIntegerProgram::new(lp, vec![0]).solve();
        assert!(!sol.optimal);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        // Deterministic pseudo-random 2-var integer programs, brute force
        // over the grid as oracle.
        let mut state = 0xABCDEF_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 2.0 - 1.0
        };
        for _case in 0..30 {
            let c0 = (next() * 5.0).round();
            let c1 = (next() * 5.0).round();
            let a0 = (next() * 3.0).round();
            let a1 = (next() * 3.0).round();
            let b = (next().abs() * 10.0).round() + 1.0;

            let mut lp = LinearProgram::new(2);
            lp.set_objective(&[c0, c1]);
            lp.set_maximize(true);
            lp.set_bounds(0, 0.0, 6.0);
            lp.set_bounds(1, 0.0, 6.0);
            lp.add_constraint(&[(0, a0), (1, a1)], ConstraintOp::Le, b);
            let sol = MixedIntegerProgram::new(lp.clone(), vec![0, 1]).solve();

            // Brute force.
            let mut best = f64::NEG_INFINITY;
            for x in 0..=6 {
                for y in 0..=6 {
                    let (xf, yf) = (x as f64, y as f64);
                    if a0 * xf + a1 * yf <= b + 1e-9 {
                        best = best.max(c0 * xf + c1 * yf);
                    }
                }
            }
            if best.is_finite() {
                assert!(sol.optimal, "solver failed where brute force succeeded");
                assert!(
                    (sol.objective - best).abs() < 1e-6,
                    "case: obj {} vs brute {best}",
                    sol.objective
                );
            }
        }
    }

    #[test]
    fn buffer_step_shape() {
        // The alignment use-case shape: x = -5 + 0.5k, k integer in [0,19];
        // minimize |3.3 - x| via eta. Optimum k: x=3.5 -> k=17, eta=0.2.
        let mut lp = LinearProgram::new(2); // k, eta
        lp.set_bounds(0, 0.0, 19.0);
        lp.set_bounds(1, 0.0, f64::INFINITY);
        lp.set_objective(&[0.0, 1.0]);
        // eta >= (-5 + 0.5k) - 3.3  ->  -0.5k + eta >= -8.3
        lp.add_constraint(&[(0, -0.5), (1, 1.0)], ConstraintOp::Ge, -8.3);
        // eta >= 3.3 - (-5 + 0.5k)  ->  0.5k + eta >= 8.3
        lp.add_constraint(&[(0, 0.5), (1, 1.0)], ConstraintOp::Ge, 8.3);
        let sol = MixedIntegerProgram::new(lp, vec![0]).solve();
        assert!(sol.optimal);
        assert!((sol.values[0] - 17.0).abs() < 1e-7);
        assert!((sol.objective - 0.2).abs() < 1e-7);
    }
}
