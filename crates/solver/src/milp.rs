use crate::{LinearProgram, LpStatus, SimplexWorkspace};

#[cfg(test)]
use crate::ConstraintOp;

/// Outcome of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Branch and bound terminated with a proven integer optimum.
    Optimal,
    /// The node limit was exhausted before the search tree was closed.
    /// The reported solution is the best incumbent found so far (all
    /// zeros when no incumbent exists); it may be suboptimal and the
    /// problem may even be infeasible.
    NodeLimitReached,
    /// The search tree was closed without finding any integer-feasible
    /// point: proven infeasibility.
    Infeasible,
}

/// Solution of a [`MixedIntegerProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Solve outcome; see [`MilpStatus`] for the meaning of `values` /
    /// `objective` in each case.
    pub status: MilpStatus,
    /// Variable values (integer variables are exactly integral).
    pub values: Vec<f64>,
    /// Objective value in the user's orientation.
    pub objective: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

impl MilpSolution {
    /// `true` if a proven integer optimum was found.
    pub fn is_optimal(&self) -> bool {
        self.status == MilpStatus::Optimal
    }
}

/// Reusable branch-and-bound state: the working copy of the relaxation,
/// the delta stack, the shared [`SimplexWorkspace`], and the incumbent
/// buffer.
///
/// Branching pushes **bound deltas** onto one working LP instead of
/// cloning the whole program per node (the pre-workspace implementation
/// cloned every row of every node), and every node relaxation is solved
/// through the one simplex workspace. A solve sequence through a shared
/// workspace returns bitwise-identical solutions to fresh-workspace
/// solves; `tests/proptests.rs` pins this equivalence.
#[derive(Debug)]
pub struct MilpWorkspace {
    simplex: SimplexWorkspace,
    working: LinearProgram,
    ops: Vec<NodeOp>,
    best_values: Vec<f64>,
    solution_values: Vec<f64>,
    milp_solution: MilpSolution,
}

impl Default for MilpWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// One entry of the depth-first delta stack.
#[derive(Debug, Clone, Copy)]
enum NodeOp {
    /// Process the current working LP as a node (the root).
    Root,
    /// Set `var`'s bounds to `[lo, hi]`, then process the node.
    Solve { var: usize, lo: f64, hi: f64 },
    /// Restore `var`'s bounds to `[lo, hi]` after both children finished.
    Restore { var: usize, lo: f64, hi: f64 },
}

impl MilpWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        MilpWorkspace {
            working: LinearProgram::new(0),
            simplex: SimplexWorkspace::new(),
            ops: Vec::new(),
            best_values: Vec::new(),
            solution_values: Vec::new(),
            milp_solution: MilpSolution {
                status: MilpStatus::Infeasible,
                values: Vec::new(),
                objective: 0.0,
                nodes: 0,
            },
        }
    }
}

/// A mixed-integer linear program: a [`LinearProgram`] plus a set of
/// variables required to take integer values.
///
/// Solved by depth-first branch and bound over the simplex relaxation with
/// best-objective pruning. The paper's alignment problem (eqs. 7–14) has a
/// handful of 20-step buffer variables per test batch, well inside this
/// solver's comfort zone; it also serves as the exactness oracle for the
/// fast heuristics in [`crate::align`] and [`crate::config`].
///
/// # Example
///
/// ```
/// use effitest_solver::{ConstraintOp, LinearProgram, MixedIntegerProgram};
///
/// // max x + y, x,y integer, 2x + 3y <= 8, x,y >= 0 -> (4, 0) = 4... with
/// // x <= 3: best integer point is (1, 2) or (3, 0); objective 3.
/// let mut lp = LinearProgram::new(2);
/// lp.set_objective(&[1.0, 1.0]);
/// lp.set_maximize(true);
/// lp.set_bounds(0, 0.0, 3.0);
/// lp.add_constraint(&[(0, 2.0), (1, 3.0)], ConstraintOp::Le, 8.0);
/// let milp = MixedIntegerProgram::new(lp, vec![0, 1]);
/// let sol = milp.solve();
/// assert!(sol.is_optimal());
/// assert!((sol.objective - 3.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone)]
pub struct MixedIntegerProgram {
    lp: LinearProgram,
    integer_vars: Vec<usize>,
    node_limit: usize,
}

const INT_TOL: f64 = 1e-6;

/// Default branch-and-bound node cap, shared with the alignment engine's
/// warm exact solve. A solve that exhausts it reports
/// [`MilpStatus::NodeLimitReached`] instead of claiming optimality or
/// infeasibility.
pub const DEFAULT_NODE_LIMIT: usize = 200_000;

impl MixedIntegerProgram {
    /// Wraps an LP with integrality requirements on `integer_vars`.
    ///
    /// # Panics
    ///
    /// Panics if any integer variable index is out of range.
    pub fn new(lp: LinearProgram, integer_vars: Vec<usize>) -> Self {
        for &v in &integer_vars {
            assert!(v < lp.num_vars(), "integer variable {v} out of range");
        }
        MixedIntegerProgram { lp, integer_vars, node_limit: DEFAULT_NODE_LIMIT }
    }

    /// Caps the number of branch-and-bound nodes (default 200 000).
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// The underlying relaxation.
    pub fn lp(&self) -> &LinearProgram {
        &self.lp
    }

    /// Solves the MILP with a throwaway workspace.
    pub fn solve(&self) -> MilpSolution {
        self.solve_with(&mut MilpWorkspace::new())
    }

    /// Solves the MILP reusing `ws` across calls; bitwise identical to
    /// [`solve`](Self::solve).
    pub fn solve_with(&self, ws: &mut MilpWorkspace) -> MilpSolution {
        solve_milp(&self.lp, &self.integer_vars, self.node_limit, ws, None).clone()
    }

    /// Solves the MILP with a known-feasible starting point (warm start).
    ///
    /// `incumbent` seeds the branch-and-bound incumbent: it is snapped to
    /// integrality at the integer variables, checked for feasibility, and
    /// (when it survives both) used as the initial pruning bound, which
    /// can cut the search tree dramatically when the seed is near-optimal
    /// (e.g. the previous frequency-stepping iteration's alignment). An
    /// infeasible or non-integral seed is silently ignored.
    ///
    /// The returned objective is always the true optimum; the returned
    /// *point* may be the seed itself when the seed ties the optimum
    /// (pruning discards equally-good subtrees), so seeded solves are not
    /// guaranteed bitwise-identical to unseeded ones.
    pub fn solve_seeded(&self, ws: &mut MilpWorkspace, incumbent: &[f64]) -> MilpSolution {
        solve_milp(&self.lp, &self.integer_vars, self.node_limit, ws, Some(incumbent)).clone()
    }
}

/// Branch-and-bound core over borrowed problem parts, writing the solution
/// into the workspace (callers clone if they need ownership).
pub(crate) fn solve_milp<'w>(
    lp: &LinearProgram,
    integer_vars: &[usize],
    node_limit: usize,
    ws: &'w mut MilpWorkspace,
    incumbent: Option<&[f64]>,
) -> &'w MilpSolution {
    let maximize = lp.is_maximize();
    ws.working.clone_from(lp);
    ws.ops.clear();
    ws.ops.push(NodeOp::Root);

    // Incumbent objective; the values live in ws.best_values.
    let mut best: Option<f64> = None;
    if let Some(seed) = incumbent {
        if seed.len() == lp.num_vars() {
            ws.solution_values.clear();
            ws.solution_values.extend_from_slice(seed);
            for &v in integer_vars {
                ws.solution_values[v] = ws.solution_values[v].round();
            }
            let integral = seed
                .iter()
                .zip(&ws.solution_values)
                .all(|(&raw, &snapped)| (raw - snapped).abs() < INT_TOL);
            if integral && lp.is_feasible(&ws.solution_values, 1e-9) {
                best = Some(lp.objective_at(&ws.solution_values));
                ws.best_values.clear();
                ws.best_values.extend_from_slice(&ws.solution_values);
            }
        }
    }

    let mut nodes = 0_usize;
    let mut limit_hit = false;
    while let Some(op) = ws.ops.pop() {
        match op {
            NodeOp::Restore { var, lo, hi } => {
                ws.working.set_bounds(var, lo, hi);
                continue;
            }
            NodeOp::Solve { var, lo, hi } => ws.working.set_bounds(var, lo, hi),
            NodeOp::Root => {}
        }
        if nodes >= node_limit {
            limit_hit = true;
            break;
        }
        nodes += 1;
        let relax = ws.simplex.solve(&ws.working);
        match relax.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // An unbounded relaxation at the root means the MILP is
                // unbounded (or the bounding box is missing); deeper
                // nodes inherit the issue. Give up on this branch.
                continue;
            }
            LpStatus::Optimal => {}
        }
        // Prune by bound.
        if let Some(inc) = best {
            let worse = if maximize {
                relax.objective <= inc + 1e-12
            } else {
                relax.objective >= inc - 1e-12
            };
            if worse {
                continue;
            }
        }
        // Find the most fractional integer variable.
        let mut branch_var = None;
        let mut worst_frac = INT_TOL;
        for &v in integer_vars {
            let val = relax.values[v];
            let frac = (val - val.round()).abs();
            if frac > worst_frac {
                worst_frac = frac;
                branch_var = Some(v);
            }
        }
        match branch_var {
            None => {
                // Integer feasible: round the integer vars exactly.
                ws.solution_values.clear();
                ws.solution_values.extend_from_slice(&relax.values);
                for &v in integer_vars {
                    ws.solution_values[v] = ws.solution_values[v].round();
                }
                let obj = lp.objective_at(&ws.solution_values);
                let better = match best {
                    None => true,
                    Some(inc) => {
                        if maximize {
                            obj > inc + 1e-12
                        } else {
                            obj < inc - 1e-12
                        }
                    }
                };
                if better {
                    best = Some(obj);
                    std::mem::swap(&mut ws.best_values, &mut ws.solution_values);
                }
            }
            Some(v) => {
                let val = relax.values[v];
                let floor = val.floor();
                let (lo, hi) = ws.working.bounds(v);
                // The parent's bounds come back after both subtrees (LIFO:
                // popped last).
                ws.ops.push(NodeOp::Restore { var: v, lo, hi });
                // Down branch: v <= floor (explored second).
                if floor >= lo - 1e-9 {
                    ws.ops.push(NodeOp::Solve { var: v, lo, hi: floor.min(hi) });
                }
                // Up branch: v >= floor + 1 (explored first, matching the
                // clone-per-node implementation this replaced).
                if floor + 1.0 <= hi + 1e-9 {
                    ws.ops.push(NodeOp::Solve { var: v, lo: (floor + 1.0).max(lo), hi });
                }
            }
        }
    }

    let status = if limit_hit {
        MilpStatus::NodeLimitReached
    } else if best.is_some() {
        MilpStatus::Optimal
    } else {
        MilpStatus::Infeasible
    };
    ws.solution_values.clear();
    match best {
        Some(objective) => {
            ws.solution_values.extend_from_slice(&ws.best_values);
            ws.milp_solution.status = status;
            ws.milp_solution.objective = objective;
        }
        None => {
            ws.solution_values.resize(lp.num_vars(), 0.0);
            ws.milp_solution.status = status;
            ws.milp_solution.objective = 0.0;
        }
    }
    std::mem::swap(&mut ws.milp_solution.values, &mut ws.solution_values);
    ws.milp_solution.nodes = nodes;
    &ws.milp_solution
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knapsack_small() {
        // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, a,b,c in {0,1}.
        let mut lp = LinearProgram::new(3);
        lp.set_objective(&[5.0, 4.0, 3.0]);
        lp.set_maximize(true);
        for v in 0..3 {
            lp.set_bounds(v, 0.0, 1.0);
        }
        lp.add_constraint(&[(0, 2.0), (1, 3.0), (2, 1.0)], ConstraintOp::Le, 5.0);
        let sol = MixedIntegerProgram::new(lp, vec![0, 1, 2]).solve();
        assert_eq!(sol.status, MilpStatus::Optimal);
        // a=1, c=1, b=0 -> 8; or a=1,b=1 -> 9 (2+3=5 fits!).
        assert!((sol.objective - 9.0).abs() < 1e-7);
        assert!((sol.values[0] - 1.0).abs() < 1e-7);
        assert!((sol.values[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn integer_rounding_differs_from_relaxation() {
        // max y s.t. 2y <= 7 -> relaxation 3.5, integer 3.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.set_maximize(true);
        lp.add_constraint(&[(0, 2.0)], ConstraintOp::Le, 7.0);
        let sol = MixedIntegerProgram::new(lp, vec![0]).solve();
        assert!(sol.is_optimal());
        assert!((sol.values[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // min x + y, x integer in [0,10], y continuous >= 0,
        // x + y >= 2.5 -> x = 0, y = 2.5 (cheaper than x = 3).
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.set_bounds(0, 0.0, 10.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 2.5);
        let sol = MixedIntegerProgram::new(lp, vec![0]).solve();
        assert!(sol.is_optimal());
        assert!((sol.objective - 2.5).abs() < 1e-7);
        assert_eq!(sol.values[0], sol.values[0].round());
    }

    #[test]
    fn infeasible_milp() {
        // x in {0,1}, x >= 2: infeasible — and *proven* infeasible, which
        // the status distinguishes from running out of nodes.
        let mut lp = LinearProgram::new(1);
        lp.set_bounds(0, 0.0, 1.0);
        lp.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 2.0);
        let sol = MixedIntegerProgram::new(lp, vec![0]).solve();
        assert_eq!(sol.status, MilpStatus::Infeasible);
        assert!(!sol.is_optimal());
    }

    #[test]
    fn node_limit_exhaustion_is_not_infeasibility() {
        // A feasible two-variable problem that needs several nodes: with a
        // one-node limit the root relaxation is fractional, branching is
        // cut short, and the status must say so instead of claiming
        // either optimality or infeasibility.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.set_maximize(true);
        lp.set_bounds(0, 0.0, 6.0);
        lp.set_bounds(1, 0.0, 6.0);
        lp.add_constraint(&[(0, 2.0), (1, 2.0)], ConstraintOp::Le, 7.0);
        let mut milp = MixedIntegerProgram::new(lp, vec![0, 1]);
        milp.set_node_limit(1);
        let sol = milp.solve();
        assert_eq!(sol.status, MilpStatus::NodeLimitReached);
        assert!(sol.nodes <= 1);
        // The same problem with room to branch closes the tree.
        milp.set_node_limit(200_000);
        let full = milp.solve();
        assert_eq!(full.status, MilpStatus::Optimal);
        assert!((full.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        // Deterministic pseudo-random 2-var integer programs, brute force
        // over the grid as oracle; one workspace shared across all cases
        // exercises the delta-branching reuse path.
        let mut state = 0xABCDEF_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 2.0 - 1.0
        };
        let mut ws = MilpWorkspace::new();
        for _case in 0..30 {
            let c0 = (next() * 5.0).round();
            let c1 = (next() * 5.0).round();
            let a0 = (next() * 3.0).round();
            let a1 = (next() * 3.0).round();
            let b = (next().abs() * 10.0).round() + 1.0;

            let mut lp = LinearProgram::new(2);
            lp.set_objective(&[c0, c1]);
            lp.set_maximize(true);
            lp.set_bounds(0, 0.0, 6.0);
            lp.set_bounds(1, 0.0, 6.0);
            lp.add_constraint(&[(0, a0), (1, a1)], ConstraintOp::Le, b);
            let sol = MixedIntegerProgram::new(lp.clone(), vec![0, 1]).solve_with(&mut ws);

            // Brute force.
            let mut best = f64::NEG_INFINITY;
            for x in 0..=6 {
                for y in 0..=6 {
                    let (xf, yf) = (x as f64, y as f64);
                    if a0 * xf + a1 * yf <= b + 1e-9 {
                        best = best.max(c0 * xf + c1 * yf);
                    }
                }
            }
            if best.is_finite() {
                assert!(sol.is_optimal(), "solver failed where brute force succeeded");
                assert!(
                    (sol.objective - best).abs() < 1e-6,
                    "case: obj {} vs brute {best}",
                    sol.objective
                );
            }
        }
    }

    #[test]
    fn seeded_solve_keeps_the_true_optimum() {
        // Seed with a feasible but suboptimal point; the optimum must
        // still be found. Then seed with the optimum itself; the objective
        // must not degrade.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[5.0, 4.0]);
        lp.set_maximize(true);
        lp.set_bounds(0, 0.0, 3.0);
        lp.set_bounds(1, 0.0, 3.0);
        lp.add_constraint(&[(0, 2.0), (1, 3.0)], ConstraintOp::Le, 9.0);
        let milp = MixedIntegerProgram::new(lp, vec![0, 1]);
        let mut ws = MilpWorkspace::new();
        let cold = milp.solve_with(&mut ws);
        assert_eq!(cold.status, MilpStatus::Optimal);
        let seeded = milp.solve_seeded(&mut ws, &[1.0, 1.0]);
        assert_eq!(seeded.status, MilpStatus::Optimal);
        assert!((seeded.objective - cold.objective).abs() < 1e-9);
        let reseeded = milp.solve_seeded(&mut ws, &cold.values);
        assert!((reseeded.objective - cold.objective).abs() < 1e-9);
        // An infeasible seed is ignored, not trusted.
        let bogus = milp.solve_seeded(&mut ws, &[9.0, 9.0]);
        assert!((bogus.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn buffer_step_shape() {
        // The alignment use-case shape: x = -5 + 0.5k, k integer in [0,19];
        // minimize |3.3 - x| via eta. Optimum k: x=3.5 -> k=17, eta=0.2.
        let mut lp = LinearProgram::new(2); // k, eta
        lp.set_bounds(0, 0.0, 19.0);
        lp.set_bounds(1, 0.0, f64::INFINITY);
        lp.set_objective(&[0.0, 1.0]);
        // eta >= (-5 + 0.5k) - 3.3  ->  -0.5k + eta >= -8.3
        lp.add_constraint(&[(0, -0.5), (1, 1.0)], ConstraintOp::Ge, -8.3);
        // eta >= 3.3 - (-5 + 0.5k)  ->  0.5k + eta >= 8.3
        lp.add_constraint(&[(0, 0.5), (1, 1.0)], ConstraintOp::Ge, 8.3);
        let sol = MixedIntegerProgram::new(lp, vec![0]).solve();
        assert!(sol.is_optimal());
        assert!((sol.values[0] - 17.0).abs() < 1e-7);
        assert!((sol.objective - 0.2).abs() < 1e-7);
    }
}
