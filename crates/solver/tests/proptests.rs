//! Property-based tests for the optimization substrate.

use effitest_solver::align::{AlignPath, AlignmentProblem, BufferVar};
use effitest_solver::config::{ConfigPath, ConfigProblem};
use effitest_solver::{
    weighted_l1, weighted_median, ConstraintOp, DifferenceSystem, LinearProgram, LpStatus,
    MixedIntegerProgram,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LP solutions are feasible and at least as good as random feasible
    /// points (optimality spot check).
    #[test]
    fn lp_optimal_dominates_random_feasible_points(
        n in 2..5_usize,
        obj in proptest::collection::vec(-3.0_f64..3.0, 5),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.1_f64..2.0, 5), 1.0_f64..20.0),
            1..5,
        ),
        probes in proptest::collection::vec(
            proptest::collection::vec(0.0_f64..5.0, 5), 8,
        ),
    ) {
        let mut lp = LinearProgram::new(n);
        lp.set_objective(&obj[..n]);
        lp.set_maximize(true);
        for j in 0..n {
            lp.set_bounds(j, 0.0, 6.0);
        }
        for (coeffs, rhs) in &rows {
            let terms: Vec<(usize, f64)> =
                coeffs[..n].iter().enumerate().map(|(j, &a)| (j, a)).collect();
            lp.add_constraint(&terms, ConstraintOp::Le, *rhs);
        }
        let sol = lp.solve();
        prop_assert_eq!(sol.status, LpStatus::Optimal, "box-bounded LP is feasible");
        prop_assert!(lp.is_feasible(&sol.values, 1e-7));
        for probe in &probes {
            let candidate: Vec<f64> = probe[..n].to_vec();
            if lp.is_feasible(&candidate, 0.0) {
                prop_assert!(
                    lp.objective_at(&candidate) <= sol.objective + 1e-6,
                    "random feasible point beats the 'optimum'"
                );
            }
        }
    }

    /// MILP integer solutions are integral, feasible, and never beat the LP
    /// relaxation.
    #[test]
    fn milp_respects_relaxation_bound(
        n in 1..4_usize,
        obj in proptest::collection::vec(-4.0_f64..4.0, 4),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.2_f64..2.0, 4), 2.0_f64..15.0),
            1..4,
        ),
    ) {
        let mut lp = LinearProgram::new(n);
        lp.set_objective(&obj[..n]);
        lp.set_maximize(true);
        for j in 0..n {
            lp.set_bounds(j, 0.0, 8.0);
        }
        for (coeffs, rhs) in &rows {
            let terms: Vec<(usize, f64)> =
                coeffs[..n].iter().enumerate().map(|(j, &a)| (j, a)).collect();
            lp.add_constraint(&terms, ConstraintOp::Le, *rhs);
        }
        let relax = lp.solve();
        prop_assume!(relax.status == LpStatus::Optimal);
        let milp = MixedIntegerProgram::new(lp.clone(), (0..n).collect()).solve();
        prop_assert!(milp.optimal);
        prop_assert!(milp.objective <= relax.objective + 1e-6);
        for &v in &milp.values[..n] {
            prop_assert!((v - v.round()).abs() < 1e-6);
        }
        prop_assert!(lp.is_feasible(&milp.values, 1e-6));
    }

    /// Difference systems: any returned assignment satisfies every
    /// constraint; systems made of non-negative weights are always feasible.
    #[test]
    fn difference_system_assignments_are_valid(
        n in 2..8_usize,
        edges in proptest::collection::vec((0..8_usize, 0..8_usize, -10.0_f64..10.0), 1..16),
    ) {
        let mut sys = DifferenceSystem::new(n);
        let mut nonneg = DifferenceSystem::new(n);
        for &(u, v, w) in &edges {
            let (u, v) = (u % n, v % n);
            if u != v {
                sys.add(u, v, w);
                nonneg.add(u, v, w.abs());
            }
        }
        if let Some(x) = sys.solve() {
            prop_assert!(sys.is_satisfied(&x, 1e-9));
        }
        let x = nonneg.solve().expect("non-negative weights cannot form a negative cycle");
        prop_assert!(nonneg.is_satisfied(&x, 1e-9));
    }

    /// The weighted median minimizes the weighted L1 objective.
    #[test]
    fn weighted_median_minimizes(
        pts in proptest::collection::vec((-50.0_f64..50.0, 0.1_f64..5.0), 1..12),
        probe in -60.0_f64..60.0,
    ) {
        let m = weighted_median(&pts).expect("positive weights");
        prop_assert!(weighted_l1(m, &pts) <= weighted_l1(probe, &pts) + 1e-9);
    }

    /// Alignment: coordinate descent always returns a grid-feasible
    /// solution whose objective the exact MILP can match or beat, and the
    /// exact solution is never worse.
    #[test]
    fn alignment_descent_vs_exact(
        centers in proptest::collection::vec(0.0_f64..40.0, 2..5),
        nb in 1..3_usize,
        roles in proptest::collection::vec(0..3_usize, 5),
    ) {
        let buffers: Vec<BufferVar> =
            (0..nb).map(|_| BufferVar { min: -3.0, max: 3.0, steps: 7 }).collect();
        let paths: Vec<AlignPath> = centers
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                let b = k % nb;
                let (src, snk) = match roles[k % roles.len()] {
                    0 => (Some(b), None),
                    1 => (None, Some(b)),
                    _ => (None, None),
                };
                AlignPath {
                    center: c,
                    weight: 1.0 + k as f64,
                    source_buffer: src,
                    sink_buffer: snk,
                    hold_lower_bound: None,
                }
            })
            .collect();
        let problem = AlignmentProblem { paths, buffers };
        let fast = problem.solve_coordinate_descent(&vec![0.0; nb]);
        prop_assert!(problem.is_feasible(&fast.buffer_values, 1e-9));
        let exact = problem.solve_exact().expect("no hold bounds => feasible");
        prop_assert!(exact.objective <= fast.objective + 1e-6);
        // Objectives must be consistent with their assignments.
        prop_assert!(
            (problem.objective(fast.period, &fast.buffer_values) - fast.objective).abs()
                < 1e-9
        );
    }

    /// Configuration: the lattice solver's xi matches the MILP oracle and
    /// its assignment is feasible at that slack.
    #[test]
    fn config_lattice_matches_milp(
        lowers in proptest::collection::vec(6.0_f64..10.5, 1..4),
        widths in proptest::collection::vec(0.0_f64..2.0, 4),
        nb in 1..3_usize,
        roles in proptest::collection::vec(0..3_usize, 4),
    ) {
        let buffers: Vec<BufferVar> =
            (0..nb).map(|_| BufferVar { min: -1.0, max: 1.0, steps: 9 }).collect();
        let paths: Vec<ConfigPath> = lowers
            .iter()
            .enumerate()
            .map(|(k, &lo)| {
                let b = k % nb;
                let (src, snk) = match roles[k % roles.len()] {
                    0 => (Some(b), None),
                    1 => (None, Some(b)),
                    _ => (None, None),
                };
                ConfigPath {
                    lower: lo,
                    upper: lo + widths[k % widths.len()],
                    source_buffer: src,
                    sink_buffer: snk,
                    hold_lower_bound: None,
                }
            })
            .collect();
        let problem = ConfigProblem { clock_period: 10.0, paths, buffers };
        let lattice = problem.solve();
        let milp = problem.solve_exact_milp();
        match (lattice, milp) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert!((a.xi - b.xi).abs() < 1e-5, "xi {} vs {}", a.xi, b.xi);
                prop_assert!(problem.is_feasible_config(&a.buffer_values, a.xi + 1e-9, 1e-6));
            }
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }
}
