//! Property-based tests for the optimization substrate.

use effitest_solver::align::{AlignPath, AlignmentEngine, AlignmentProblem, BufferVar};
use effitest_solver::config::{ConfigPath, ConfigProblem};
use effitest_solver::{
    weighted_l1, weighted_median, weighted_median_in_place, ConstraintOp, DifferenceSystem,
    LinearProgram, LpStatus, MilpWorkspace, MixedIntegerProgram, SimplexWorkspace,
};
use proptest::prelude::*;

/// Applies the `k`-th bound mutation of a generated sequence to variable
/// `var`: cycle through box / free / upper-only / shifted-box shapes so
/// warm solves cross standard-form structure changes, not just RHS edits.
fn apply_bound_tweak(lp: &mut LinearProgram, var: usize, kind: usize, lo: f64, width: f64) {
    match kind % 4 {
        0 => lp.set_bounds(var, lo, lo + width),
        1 => lp.set_free(var),
        2 => lp.set_bounds(var, f64::NEG_INFINITY, lo + width),
        _ => lp.set_bounds(var, 0.0, 6.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LP solutions are feasible and at least as good as random feasible
    /// points (optimality spot check).
    #[test]
    fn lp_optimal_dominates_random_feasible_points(
        n in 2..5_usize,
        obj in proptest::collection::vec(-3.0_f64..3.0, 5),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.1_f64..2.0, 5), 1.0_f64..20.0),
            1..5,
        ),
        probes in proptest::collection::vec(
            proptest::collection::vec(0.0_f64..5.0, 5), 8,
        ),
    ) {
        let mut lp = LinearProgram::new(n);
        lp.set_objective(&obj[..n]);
        lp.set_maximize(true);
        for j in 0..n {
            lp.set_bounds(j, 0.0, 6.0);
        }
        for (coeffs, rhs) in &rows {
            let terms: Vec<(usize, f64)> =
                coeffs[..n].iter().enumerate().map(|(j, &a)| (j, a)).collect();
            lp.add_constraint(&terms, ConstraintOp::Le, *rhs);
        }
        let sol = lp.solve();
        prop_assert_eq!(sol.status, LpStatus::Optimal, "box-bounded LP is feasible");
        prop_assert!(lp.is_feasible(&sol.values, 1e-7));
        for probe in &probes {
            let candidate: Vec<f64> = probe[..n].to_vec();
            if lp.is_feasible(&candidate, 0.0) {
                prop_assert!(
                    lp.objective_at(&candidate) <= sol.objective + 1e-6,
                    "random feasible point beats the 'optimum'"
                );
            }
        }
    }

    /// MILP integer solutions are integral, feasible, and never beat the LP
    /// relaxation.
    #[test]
    fn milp_respects_relaxation_bound(
        n in 1..4_usize,
        obj in proptest::collection::vec(-4.0_f64..4.0, 4),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.2_f64..2.0, 4), 2.0_f64..15.0),
            1..4,
        ),
    ) {
        let mut lp = LinearProgram::new(n);
        lp.set_objective(&obj[..n]);
        lp.set_maximize(true);
        for j in 0..n {
            lp.set_bounds(j, 0.0, 8.0);
        }
        for (coeffs, rhs) in &rows {
            let terms: Vec<(usize, f64)> =
                coeffs[..n].iter().enumerate().map(|(j, &a)| (j, a)).collect();
            lp.add_constraint(&terms, ConstraintOp::Le, *rhs);
        }
        let relax = lp.solve();
        prop_assume!(relax.status == LpStatus::Optimal);
        let milp = MixedIntegerProgram::new(lp.clone(), (0..n).collect()).solve();
        prop_assert!(milp.is_optimal());
        prop_assert!(milp.objective <= relax.objective + 1e-6);
        for &v in &milp.values[..n] {
            prop_assert!((v - v.round()).abs() < 1e-6);
        }
        prop_assert!(lp.is_feasible(&milp.values, 1e-6));
    }

    /// Difference systems: any returned assignment satisfies every
    /// constraint; systems made of non-negative weights are always feasible.
    #[test]
    fn difference_system_assignments_are_valid(
        n in 2..8_usize,
        edges in proptest::collection::vec((0..8_usize, 0..8_usize, -10.0_f64..10.0), 1..16),
    ) {
        let mut sys = DifferenceSystem::new(n);
        let mut nonneg = DifferenceSystem::new(n);
        for &(u, v, w) in &edges {
            let (u, v) = (u % n, v % n);
            if u != v {
                sys.add(u, v, w);
                nonneg.add(u, v, w.abs());
            }
        }
        if let Some(x) = sys.solve() {
            prop_assert!(sys.is_satisfied(&x, 1e-9));
        }
        let x = nonneg.solve().expect("non-negative weights cannot form a negative cycle");
        prop_assert!(nonneg.is_satisfied(&x, 1e-9));
    }

    /// The weighted median minimizes the weighted L1 objective.
    #[test]
    fn weighted_median_minimizes(
        pts in proptest::collection::vec((-50.0_f64..50.0, 0.1_f64..5.0), 1..12),
        probe in -60.0_f64..60.0,
    ) {
        let m = weighted_median(&pts).expect("positive weights");
        prop_assert!(weighted_l1(m, &pts) <= weighted_l1(probe, &pts) + 1e-9);
    }

    /// Alignment: coordinate descent always returns a grid-feasible
    /// solution whose objective the exact MILP can match or beat, and the
    /// exact solution is never worse.
    #[test]
    fn alignment_descent_vs_exact(
        centers in proptest::collection::vec(0.0_f64..40.0, 2..5),
        nb in 1..3_usize,
        roles in proptest::collection::vec(0..3_usize, 5),
    ) {
        let buffers: Vec<BufferVar> =
            (0..nb).map(|_| BufferVar { min: -3.0, max: 3.0, steps: 7 }).collect();
        let paths: Vec<AlignPath> = centers
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                let b = k % nb;
                let (src, snk) = match roles[k % roles.len()] {
                    0 => (Some(b), None),
                    1 => (None, Some(b)),
                    _ => (None, None),
                };
                AlignPath {
                    center: c,
                    weight: 1.0 + k as f64,
                    source_buffer: src,
                    sink_buffer: snk,
                    hold_lower_bound: None,
                }
            })
            .collect();
        let problem = AlignmentProblem { paths, buffers };
        let fast = problem.solve_coordinate_descent(&vec![0.0; nb]);
        prop_assert!(problem.is_feasible(&fast.buffer_values, 1e-9));
        let exact = problem.solve_exact().expect("no hold bounds => feasible");
        prop_assert!(exact.objective <= fast.objective + 1e-6);
        // Objectives must be consistent with their assignments.
        prop_assert!(
            (problem.objective(fast.period, &fast.buffer_values) - fast.objective).abs()
                < 1e-9
        );
    }

    /// Warm-start equivalence, LP level: a `SimplexWorkspace` reused
    /// across a randomized sequence of solves (with bounds and RHS edits
    /// between them, including structure flips to free / upper-only
    /// variables) returns **bitwise-identical** solutions to cold solves.
    /// This is what makes workspace reuse safe in branch-and-bound and in
    /// per-thread population workers: no state may leak between solves.
    #[test]
    fn warm_simplex_workspace_matches_cold_bitwise(
        n in 2..5_usize,
        obj in proptest::collection::vec(-3.0_f64..3.0, 5),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.1_f64..2.0, 5), -5.0_f64..20.0),
            1..5,
        ),
        tweaks in proptest::collection::vec(
            (0..5_usize, 0..4_usize, 0.0_f64..3.0, 0.0_f64..4.0),
            1..8,
        ),
    ) {
        let mut lp = LinearProgram::new(n);
        lp.set_objective(&obj[..n]);
        lp.set_maximize(true);
        for j in 0..n {
            lp.set_bounds(j, 0.0, 6.0);
        }
        for (coeffs, rhs) in &rows {
            let terms: Vec<(usize, f64)> =
                coeffs[..n].iter().enumerate().map(|(j, &a)| (j, a)).collect();
            lp.add_constraint(&terms, ConstraintOp::Le, *rhs);
        }
        let mut warm = SimplexWorkspace::new();
        for &(var, kind, lo, width) in &tweaks {
            apply_bound_tweak(&mut lp, var % n, kind, lo, width);
            let cold = lp.solve();
            let warm_sol = warm.solve(&lp);
            prop_assert_eq!(warm_sol.status, cold.status);
            prop_assert_eq!(warm_sol.objective.to_bits(), cold.objective.to_bits());
            let warm_bits: Vec<u64> = warm_sol.values.iter().map(|v| v.to_bits()).collect();
            let cold_bits: Vec<u64> = cold.values.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(warm_bits, cold_bits);
        }
    }

    /// Warm-start equivalence, MILP level: delta-branching through one
    /// shared `MilpWorkspace` (one working LP mutated by bound push/pop
    /// instead of a clone per node) returns bitwise-identical solutions —
    /// values, objective, status, *and* node count — to cold solves, across
    /// a randomized solve sequence.
    #[test]
    fn warm_milp_workspace_matches_cold_bitwise(
        n in 1..4_usize,
        obj in proptest::collection::vec(-4.0_f64..4.0, 4),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.2_f64..2.0, 4), 2.0_f64..15.0),
            1..4,
        ),
        bound_edits in proptest::collection::vec(
            (0..4_usize, 0.0_f64..3.0, 0.0_f64..5.0),
            1..6,
        ),
    ) {
        let mut lp = LinearProgram::new(n);
        lp.set_objective(&obj[..n]);
        lp.set_maximize(true);
        for j in 0..n {
            lp.set_bounds(j, 0.0, 8.0);
        }
        for (coeffs, rhs) in &rows {
            let terms: Vec<(usize, f64)> =
                coeffs[..n].iter().enumerate().map(|(j, &a)| (j, a)).collect();
            lp.add_constraint(&terms, ConstraintOp::Le, *rhs);
        }
        let mut warm = MilpWorkspace::new();
        for &(var, lo, width) in &bound_edits {
            lp.set_bounds(var % n, lo.floor(), lo.floor() + width.ceil().max(1.0));
            let milp = MixedIntegerProgram::new(lp.clone(), (0..n).collect());
            let cold = milp.solve();
            let warm_sol = milp.solve_with(&mut warm);
            prop_assert_eq!(warm_sol.status, cold.status);
            prop_assert_eq!(warm_sol.nodes, cold.nodes);
            prop_assert_eq!(warm_sol.objective.to_bits(), cold.objective.to_bits());
            let warm_bits: Vec<u64> = warm_sol.values.iter().map(|v| v.to_bits()).collect();
            let cold_bits: Vec<u64> = cold.values.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(warm_bits, cold_bits);
        }
    }

    /// Warm-start behavior of the `AlignmentEngine` across a batch's
    /// iterations (centers drifting between solves, as in frequency
    /// stepping):
    ///
    /// * the first solve is bitwise-identical to the cold multi-start API;
    /// * later solves descend from the warm seed alone — they must stay
    ///   grid-feasible, report an objective consistent with their values,
    ///   never be worse than the warm seed they started from, and replay
    ///   bitwise-identically on a second engine fed the same sequence (no
    ///   hidden state beyond the documented warm vector).
    #[test]
    fn warm_alignment_engine_tracks_cold_descent(
        centers in proptest::collection::vec(0.0_f64..40.0, 2..5),
        drifts in proptest::collection::vec(
            proptest::collection::vec(-3.0_f64..3.0, 5),
            1..5,
        ),
        nb in 1..3_usize,
        roles in proptest::collection::vec(0..3_usize, 5),
    ) {
        let buffers: Vec<BufferVar> =
            (0..nb).map(|_| BufferVar { min: -3.0, max: 3.0, steps: 7 }).collect();
        let base_paths: Vec<AlignPath> = centers
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                let b = k % nb;
                let (src, snk) = match roles[k % roles.len()] {
                    0 => (Some(b), None),
                    1 => (None, Some(b)),
                    _ => (None, None),
                };
                AlignPath {
                    center: c,
                    weight: 1.0 + k as f64,
                    source_buffer: src,
                    sink_buffer: snk,
                    hold_lower_bound: None,
                }
            })
            .collect();
        let iteration_paths: Vec<Vec<AlignPath>> = drifts
            .iter()
            .map(|drift| {
                base_paths
                    .iter()
                    .enumerate()
                    .map(|(k, p)| AlignPath { center: p.center + drift[k % drift.len()], ..*p })
                    .collect()
            })
            .collect();

        let mut engine = AlignmentEngine::new();
        let mut replay = AlignmentEngine::new();
        engine.begin_batch(&buffers);
        replay.begin_batch(&buffers);
        for (iter, paths) in iteration_paths.iter().enumerate() {
            let warm_before = engine.warm_values().to_vec();
            let e = engine.paths_mut();
            e.clear();
            e.extend_from_slice(paths);
            let engine_sol = engine.solve().clone();
            let problem = AlignmentProblem { paths: paths.clone(), buffers: buffers.clone() };
            prop_assert!(problem.is_feasible(&engine_sol.buffer_values, 1e-9));
            // Objective consistency.
            prop_assert!(
                (problem.objective(engine_sol.period, &engine_sol.buffer_values)
                    - engine_sol.objective)
                    .abs()
                    < 1e-9
            );
            if iter == 0 {
                // First solve: bitwise-identical to the cold multi-start.
                let cold = problem.solve_coordinate_descent(&warm_before);
                prop_assert_eq!(engine_sol.period.to_bits(), cold.period.to_bits());
                prop_assert_eq!(engine_sol.objective.to_bits(), cold.objective.to_bits());
                let e_bits: Vec<u64> =
                    engine_sol.buffer_values.iter().map(|v| v.to_bits()).collect();
                let c_bits: Vec<u64> = cold.buffer_values.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(e_bits, c_bits);
            } else {
                // Warm solves never lose to the seed they started from.
                let snapped: Vec<f64> = buffers
                    .iter()
                    .zip(&warm_before)
                    .map(|(b, &w)| b.value(b.nearest(w)))
                    .collect();
                let seed_period = weighted_median(
                    &problem
                        .paths
                        .iter()
                        .map(|p| (p.center + p.shift(&snapped), p.weight))
                        .collect::<Vec<_>>(),
                )
                .unwrap_or(0.0);
                let seed_obj = problem.objective(seed_period, &snapped);
                prop_assert!(engine_sol.objective <= seed_obj + 1e-9);
            }
            // Replay on a second engine: no hidden state.
            let r = replay.paths_mut();
            r.clear();
            r.extend_from_slice(paths);
            let replay_sol = replay.solve();
            prop_assert_eq!(replay_sol.objective.to_bits(), engine_sol.objective.to_bits());
            let r_bits: Vec<u64> = replay_sol.buffer_values.iter().map(|v| v.to_bits()).collect();
            let e_bits: Vec<u64> =
                engine_sol.buffer_values.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(r_bits, e_bits);
        }
    }

    /// The in-place weighted median agrees with the allocating one (the
    /// value is order-independent even though the unstable sort is not).
    #[test]
    fn weighted_median_in_place_matches_allocating(
        pts in proptest::collection::vec((-50.0_f64..50.0, 0.1_f64..5.0), 1..12),
    ) {
        let mut scratch = pts.clone();
        let a = weighted_median_in_place(&mut scratch).expect("positive weights");
        let b = weighted_median(&pts).expect("positive weights");
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }

    /// Configuration: the lattice solver's xi matches the MILP oracle and
    /// its assignment is feasible at that slack.
    #[test]
    fn config_lattice_matches_milp(
        lowers in proptest::collection::vec(6.0_f64..10.5, 1..4),
        widths in proptest::collection::vec(0.0_f64..2.0, 4),
        nb in 1..3_usize,
        roles in proptest::collection::vec(0..3_usize, 4),
    ) {
        let buffers: Vec<BufferVar> =
            (0..nb).map(|_| BufferVar { min: -1.0, max: 1.0, steps: 9 }).collect();
        let paths: Vec<ConfigPath> = lowers
            .iter()
            .enumerate()
            .map(|(k, &lo)| {
                let b = k % nb;
                let (src, snk) = match roles[k % roles.len()] {
                    0 => (Some(b), None),
                    1 => (None, Some(b)),
                    _ => (None, None),
                };
                ConfigPath {
                    lower: lo,
                    upper: lo + widths[k % widths.len()],
                    source_buffer: src,
                    sink_buffer: snk,
                    hold_lower_bound: None,
                }
            })
            .collect();
        let problem = ConfigProblem { clock_period: 10.0, paths, buffers };
        let lattice = problem.solve();
        let milp = problem.solve_exact_milp();
        match (lattice, milp) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert!((a.xi - b.xi).abs() < 1e-5, "xi {} vs {}", a.xi, b.xi);
                prop_assert!(problem.is_feasible_config(&a.buffer_values, a.xi + 1e-9, 1e-6));
            }
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }
}
