/// A first-order canonical (linear Gaussian) delay form:
///
/// ```text
/// D = mean + sum_k coeffs[k] * Z_k + sum_g indep[g] * E_g + extra * E_path
/// ```
///
/// where `Z_k` are the shared spatial factors of a
/// [`FactorSpace`](crate::FactorSpace), `E_g` are per-gate independent
/// standard normals (shared between paths that share gate `g`), and
/// `E_path` is a per-path independent standard normal used only by the
/// inflated-variation experiment (paper Fig. 7: sigmas grow, covariances do
/// not).
///
/// All second-order statistics are exact consequences of this form:
/// variance, covariance, and correlation are plain dot products.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalDelay {
    /// Mean delay (ps).
    pub mean: f64,
    /// Coefficients over the shared spatial factors.
    pub coeffs: Vec<f64>,
    /// Per-gate independent components, sorted ascending by gate index:
    /// `(gate_index, coefficient)`.
    pub indep: Vec<(u32, f64)>,
    /// Per-path independent component (0 unless variance was inflated).
    pub extra: f64,
}

impl CanonicalDelay {
    /// A deterministic delay (no variation).
    pub fn constant(mean: f64, n_factors: usize) -> Self {
        CanonicalDelay { mean, coeffs: vec![0.0; n_factors], indep: Vec::new(), extra: 0.0 }
    }

    /// Variance of the form.
    pub fn variance(&self) -> f64 {
        let shared: f64 = self.coeffs.iter().map(|c| c * c).sum();
        let indep: f64 = self.indep.iter().map(|(_, c)| c * c).sum();
        shared + indep + self.extra * self.extra
    }

    /// Standard deviation of the form.
    pub fn sigma(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Covariance with another form over the same factor space.
    ///
    /// Shared-factor coefficients contribute a dense dot product; per-gate
    /// independent parts contribute only where both forms contain the same
    /// gate. The per-path `extra` components never co-vary.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the factor-space dimensions differ.
    pub fn covariance(&self, other: &CanonicalDelay) -> f64 {
        debug_assert_eq!(self.coeffs.len(), other.coeffs.len(), "factor spaces differ");
        let mut cov: f64 = self.coeffs.iter().zip(&other.coeffs).map(|(&a, &b)| a * b).sum();
        // Sorted-merge intersection of the per-gate independent parts.
        let (mut i, mut j) = (0, 0);
        while i < self.indep.len() && j < other.indep.len() {
            match self.indep[i].0.cmp(&other.indep[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    cov += self.indep[i].1 * other.indep[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        cov
    }

    /// Correlation with another form (0 if either is deterministic).
    pub fn correlation(&self, other: &CanonicalDelay) -> f64 {
        let va = self.variance();
        let vb = other.variance();
        if va <= 0.0 || vb <= 0.0 {
            return 0.0;
        }
        (self.covariance(other) / (va.sqrt() * vb.sqrt())).clamp(-1.0, 1.0)
    }

    /// Evaluates the form for a concrete factor realization.
    ///
    /// `z` must cover the shared factor space; `gate_eps` maps gate index to
    /// its independent standard normal; `path_eps` realizes the per-path
    /// `extra` component.
    pub fn evaluate(&self, z: &[f64], gate_eps: &[f64], path_eps: f64) -> f64 {
        debug_assert_eq!(z.len(), self.coeffs.len());
        let mut d = self.mean;
        for (c, zv) in self.coeffs.iter().zip(z) {
            d += c * zv;
        }
        for &(g, c) in &self.indep {
            d += c * gate_eps[g as usize];
        }
        d + self.extra * path_eps
    }

    /// Returns a copy whose total sigma is scaled by `factor` (>= 1) by
    /// growing only the per-path independent `extra` term, leaving all
    /// covariances with other paths untouched — the paper's Fig.-7 setup.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    pub fn with_inflated_sigma(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "sigma inflation factor must be >= 1");
        let var = self.variance();
        let added = var * (factor * factor - 1.0);
        let mut out = self.clone();
        out.extra = (self.extra * self.extra + added).sqrt();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn form(mean: f64, coeffs: &[f64], indep: &[(u32, f64)]) -> CanonicalDelay {
        CanonicalDelay { mean, coeffs: coeffs.to_vec(), indep: indep.to_vec(), extra: 0.0 }
    }

    #[test]
    fn variance_sums_components() {
        let f = form(10.0, &[3.0, 4.0], &[(2, 2.0)]);
        assert!((f.variance() - (9.0 + 16.0 + 4.0)).abs() < 1e-12);
        assert!((f.sigma() - 29.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn covariance_uses_shared_factors_and_shared_gates() {
        let a = form(0.0, &[1.0, 2.0], &[(1, 3.0), (5, 1.0)]);
        let b = form(0.0, &[2.0, -1.0], &[(1, 4.0), (6, 9.0)]);
        // Shared: 1*2 + 2*(-1) = 0; gate 1: 3*4 = 12.
        assert!((a.covariance(&b) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn identical_forms_have_correlation_one() {
        let a = form(5.0, &[1.0, 0.5], &[(0, 0.2)]);
        assert!((a.correlation(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_forms_have_correlation_zero() {
        let a = form(0.0, &[1.0, 0.0], &[(0, 1.0)]);
        let b = form(0.0, &[0.0, 1.0], &[(1, 1.0)]);
        assert_eq!(a.correlation(&b), 0.0);
    }

    #[test]
    fn deterministic_form_is_safe() {
        let c = CanonicalDelay::constant(7.0, 4);
        assert_eq!(c.variance(), 0.0);
        let other = form(0.0, &[1.0, 0.0, 0.0, 0.0], &[]);
        assert_eq!(c.correlation(&other), 0.0);
        assert_eq!(c.evaluate(&[1.0, 2.0, 3.0, 4.0], &[], 0.0), 7.0);
    }

    #[test]
    fn evaluate_matches_hand_computation() {
        let f = form(10.0, &[1.0, -2.0], &[(0, 0.5)]);
        let v = f.evaluate(&[2.0, 1.0], &[4.0], 0.0);
        assert!((v - (10.0 + 2.0 - 2.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn inflation_preserves_covariances() {
        let a = form(0.0, &[1.0, 1.0], &[(3, 0.5)]);
        let b = form(0.0, &[1.0, -0.5], &[(3, 0.8)]);
        let cov_before = a.covariance(&b);
        let a2 = a.with_inflated_sigma(1.1);
        assert!((a2.covariance(&b) - cov_before).abs() < 1e-12);
        assert!((a2.sigma() - 1.1 * a.sigma()).abs() < 1e-9);
        // Correlation must drop.
        assert!(a2.correlation(&b).abs() < a.correlation(&b).abs());
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn inflation_rejects_shrinking() {
        form(0.0, &[1.0], &[]).with_inflated_sigma(0.9);
    }

    #[test]
    fn extra_component_realized_by_path_eps() {
        let mut f = form(0.0, &[0.0], &[]);
        f.extra = 2.0;
        assert_eq!(f.evaluate(&[0.0], &[], 1.5), 3.0);
        assert!((f.variance() - 4.0).abs() < 1e-12);
    }
}
