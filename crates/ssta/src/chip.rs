/// One manufactured chip: a frozen realization of all process variations.
///
/// After manufacturing, gate delays "become fixed values" (paper §2); the
/// virtual tester measures these frozen delays with frequency stepping.
///
/// Following the paper's convention (`D_ij = d_ij + s_j` and
/// `underline(d)_ij = h_j - d_ij_min`), a `ChipInstance` stores:
///
/// * [`setup_delay(idx)`](Self::setup_delay) — the realized *effective*
///   setup delay `D_ij` of required path `idx` (combinational max delay
///   plus the sink's setup time). The setup constraint on this chip is
///   `T >= D_ij + x_i - x_j`.
/// * [`hold_bound(idx)`](Self::hold_bound) — the realized hold bound
///   `underline(d)_ij` of the associated short path (sink hold time minus
///   the short path's min delay), where present. The hold constraint is
///   `x_i - x_j >= underline(d)_ij`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipInstance {
    seed: u64,
    setup_delays: Vec<f64>,
    hold_bounds: Vec<Option<f64>>,
}

impl ChipInstance {
    /// Assembles a chip instance from realized delays.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors are not index-aligned.
    pub fn new(seed: u64, setup_delays: Vec<f64>, hold_bounds: Vec<Option<f64>>) -> Self {
        assert_eq!(
            setup_delays.len(),
            hold_bounds.len(),
            "setup/hold vectors must be index-aligned"
        );
        ChipInstance { seed, setup_delays, hold_bounds }
    }

    /// The sampling seed that produced this chip (its "die id").
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of paths.
    pub fn path_count(&self) -> usize {
        self.setup_delays.len()
    }

    /// Realized effective setup delay `D_ij` of required path `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn setup_delay(&self, idx: usize) -> f64 {
        self.setup_delays[idx]
    }

    /// Realized hold bound `underline(d)_ij` for path `idx`, if the
    /// benchmark carved a short path for it.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn hold_bound(&self, idx: usize) -> Option<f64> {
        self.hold_bounds[idx]
    }

    /// All realized setup delays.
    pub fn setup_delays(&self) -> &[f64] {
        &self.setup_delays
    }

    /// All realized hold bounds.
    pub fn hold_bounds(&self) -> &[Option<f64>] {
        &self.hold_bounds
    }

    /// The minimum clock period at which this chip works with all buffers
    /// at zero (no tuning): `max_ij D_ij`, assuming hold passes at zero
    /// skew.
    pub fn min_period_untuned(&self) -> f64 {
        self.setup_delays.iter().fold(0.0_f64, |m, &d| m.max(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let chip = ChipInstance::new(9, vec![1.0, 2.0], vec![Some(0.5), None]);
        assert_eq!(chip.seed(), 9);
        assert_eq!(chip.path_count(), 2);
        assert_eq!(chip.setup_delay(1), 2.0);
        assert_eq!(chip.hold_bound(0), Some(0.5));
        assert_eq!(chip.hold_bound(1), None);
        assert_eq!(chip.setup_delays(), &[1.0, 2.0]);
        assert_eq!(chip.min_period_untuned(), 2.0);
    }

    #[test]
    #[should_panic(expected = "index-aligned")]
    fn rejects_misaligned_vectors() {
        ChipInstance::new(0, vec![1.0], vec![]);
    }
}
