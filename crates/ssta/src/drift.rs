//! Aging drift: time-indexed delay shifts for deployed chips.
//!
//! The paper's flow tunes a chip once, at test time, against frozen
//! delays. Real silicon ages: NBTI/HCI degradation slows transistors over
//! deployment, so a configuration that passed at `t = 0` may fail at
//! `t = T`. The group's aging-aware follow-up work treats this drift as a
//! first-class input; the hostile-silicon scenarios here use
//! [`DriftModel`] to re-evaluate a tuned chip after a deterministic,
//! per-path aging shift.

use crate::chip::ChipInstance;
use crate::sampler::{hash_normal, mix_stream};

/// A deterministic aging model: every setup delay grows multiplicatively
/// with deployment time.
///
/// Path `p` of the chip with die id `s` ages at the fractional rate
/// `rate * max(0, 1 + variability * g)` per unit time, where `g` is a
/// standard-normal draw hashed from `(seed, s, p)` — stateless, so the
/// aged chip is bitwise identical no matter which thread ages it or how
/// many chips aged before it. The `max(0, ..)` clamp keeps aging monotone:
/// silicon only gets slower.
///
/// Hold bounds are left untouched: aging slows the short paths too, which
/// only *relaxes* the realized hold bound `h_j - d_min`; keeping the
/// `t = 0` bound is therefore conservative for the pass/fail verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Mean fractional delay increase per unit deployment time (e.g.
    /// `0.02` = 2% slower per year if `t` is in years).
    pub rate: f64,
    /// Relative per-path spread of the rate (sigma of the multiplicative
    /// factor `1 + variability * g`).
    pub variability: f64,
    /// Seed of the per-path rate draws.
    pub seed: u64,
}

impl DriftModel {
    /// No aging: every chip is returned unchanged.
    pub fn none() -> Self {
        DriftModel { rate: 0.0, variability: 0.0, seed: 0 }
    }

    /// `true` when this model never changes a chip.
    pub fn is_none(&self) -> bool {
        self.rate == 0.0
    }

    /// The chip as it looks after `time` units of deployment.
    ///
    /// `aged(chip, 0.0)` and `DriftModel::none().aged(chip, t)` return the
    /// chip bit-for-bit unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative (silicon does not un-age).
    pub fn aged(&self, chip: &ChipInstance, time: f64) -> ChipInstance {
        assert!(time >= 0.0, "deployment time must be non-negative");
        if self.is_none() || time == 0.0 {
            return chip.clone();
        }
        let per_chip = mix_stream(self.seed, chip.seed());
        let setup = chip
            .setup_delays()
            .iter()
            .enumerate()
            .map(|(p, &d)| {
                let g = hash_normal(mix_stream(per_chip, p as u64));
                let path_rate = self.rate * (1.0 + self.variability * g).max(0.0);
                d * (1.0 + path_rate * time)
            })
            .collect();
        ChipInstance::new(chip.seed(), setup, chip.hold_bounds().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ChipInstance {
        ChipInstance::new(7, vec![5.0, 8.0, 3.5], vec![Some(-1.0), None, Some(0.25)])
    }

    #[test]
    fn none_and_zero_time_are_identity() {
        let c = chip();
        assert_eq!(DriftModel::none().aged(&c, 10.0), c);
        let m = DriftModel { rate: 0.05, variability: 0.3, seed: 1 };
        assert_eq!(m.aged(&c, 0.0), c);
        assert!(DriftModel::none().is_none());
        assert!(!m.is_none());
    }

    #[test]
    fn aging_is_monotone_and_deterministic() {
        let c = chip();
        let m = DriftModel { rate: 0.05, variability: 0.5, seed: 42 };
        let aged = m.aged(&c, 2.0);
        let again = m.aged(&c, 2.0);
        assert_eq!(aged, again);
        for p in 0..c.path_count() {
            // Slower, never faster — the rate clamp guarantees it.
            assert!(aged.setup_delay(p) >= c.setup_delay(p), "path {p} sped up");
            assert_eq!(aged.hold_bound(p), c.hold_bound(p));
        }
        // More time, more drift.
        let later = m.aged(&c, 4.0);
        for p in 0..c.path_count() {
            assert!(later.setup_delay(p) >= aged.setup_delay(p));
        }
    }

    #[test]
    fn variability_spreads_rates_across_paths() {
        let c = ChipInstance::new(3, vec![1.0; 32], vec![None; 32]);
        let m = DriftModel { rate: 0.1, variability: 0.5, seed: 9 };
        let aged = m.aged(&c, 1.0);
        let rates: Vec<f64> = (0..32).map(|p| aged.setup_delay(p) - 1.0).collect();
        let distinct = rates.windows(2).any(|w| w[0] != w[1]);
        assert!(distinct, "per-path rates should differ under variability");
        // Mean realized rate stays near the nominal rate.
        let mean = rates.iter().sum::<f64>() / 32.0;
        assert!((mean - 0.1).abs() < 0.05, "mean rate {mean}");
    }

    #[test]
    fn zero_variability_ages_uniformly() {
        let c = chip();
        let m = DriftModel { rate: 0.1, variability: 0.0, seed: 0 };
        let aged = m.aged(&c, 1.0);
        for p in 0..c.path_count() {
            assert!((aged.setup_delay(p) - c.setup_delay(p) * 1.1).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_is_rejected() {
        DriftModel::none().aged(&chip(), -1.0);
    }
}
