//! Stamp-based dirty tracking for incremental timing updates.
//!
//! The aligned test (and any other frequency-stepping consumer) refines
//! per-path delay bounds iteratively, but a single probe only narrows a
//! few of them. Re-deriving every derived quantity (range centers,
//! alignment inputs) each step is wasted work at industrial path counts.
//! [`ChangeTracker`] records *which* entries changed during the current
//! step so consumers recompute exactly those — and nothing else.
//!
//! The tracker is stamp-based: advancing a step is a single counter
//! increment, never a clear of the underlying vector, so the per-step
//! cost is proportional to the number of changes, not the number of
//! tracked entries.

/// Tracks which of `n` entries changed during the current step.
///
/// A freshly [`reset`](ChangeTracker::reset) tracker reports *every*
/// entry as changed — the first step after a reset must recompute
/// everything, which is exactly the full-analysis baseline the
/// incremental path degenerates to.
#[derive(Debug, Default, Clone)]
pub struct ChangeTracker {
    /// Step at which each entry last changed.
    last_changed: Vec<u64>,
    /// The current step stamp.
    step: u64,
}

impl ChangeTracker {
    /// Creates an empty tracker; call [`reset`](Self::reset) before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-initializes the tracker for `n` entries, all marked changed in
    /// the (new) current step.
    pub fn reset(&mut self, n: usize) {
        self.step += 1;
        self.last_changed.clear();
        self.last_changed.resize(n, self.step);
    }

    /// Opens a new step; nothing is marked changed in it yet.
    pub fn advance(&mut self) {
        self.step += 1;
    }

    /// Marks entry `i` as changed in the current step.
    pub fn mark(&mut self, i: usize) {
        self.last_changed[i] = self.step;
    }

    /// `true` if entry `i` changed during the current step.
    pub fn changed_in_current_step(&self, i: usize) -> bool {
        self.last_changed[i] == self.step
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.last_changed.len()
    }

    /// `true` if the tracker tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.last_changed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_marks_everything_changed() {
        let mut t = ChangeTracker::new();
        t.reset(4);
        assert_eq!(t.len(), 4);
        assert!((0..4).all(|i| t.changed_in_current_step(i)));
    }

    #[test]
    fn advance_clears_without_touching_the_vector() {
        let mut t = ChangeTracker::new();
        t.reset(3);
        t.advance();
        assert!((0..3).all(|i| !t.changed_in_current_step(i)));
        t.mark(1);
        assert!(!t.changed_in_current_step(0));
        assert!(t.changed_in_current_step(1));
        assert!(!t.changed_in_current_step(2));
    }

    #[test]
    fn marks_do_not_leak_across_steps() {
        let mut t = ChangeTracker::new();
        t.reset(2);
        t.advance();
        t.mark(0);
        t.advance();
        assert!(!t.changed_in_current_step(0));
        t.mark(0);
        assert!(t.changed_in_current_step(0));
    }

    #[test]
    fn reset_after_use_starts_clean_at_a_new_size() {
        let mut t = ChangeTracker::new();
        t.reset(5);
        t.advance();
        t.mark(4);
        t.reset(2);
        assert_eq!(t.len(), 2);
        assert!(t.changed_in_current_step(0) && t.changed_in_current_step(1));
        t.advance();
        assert!(!t.changed_in_current_step(0));
    }

    #[test]
    fn empty_tracker_reports_empty() {
        let mut t = ChangeTracker::new();
        assert!(t.is_empty());
        t.reset(1);
        assert!(!t.is_empty());
        t.reset(0);
        assert!(t.is_empty());
    }
}
