//! Statistical static timing analysis substrate for the EffiTest
//! reproduction.
//!
//! The paper assumes an SSTA front end (reference \[10\] therein) that
//! delivers, for every required path, a Gaussian delay with known
//! correlations to all other paths, plus the ability to simulate
//! manufactured chips. This crate implements that front end from scratch:
//!
//! * [`VariationConfig`] — the process-variation model: relative sigmas for
//!   transistor length (15.7%), oxide thickness (5.3%) and threshold
//!   voltage (4.4%); perfect correlation for side-by-side devices (same
//!   grid cell) and 0.25 correlation die-wide, exactly the paper's setup.
//! * [`FactorSpace`] — the global + per-grid-cell standard-normal factors
//!   that realize those correlations.
//! * [`CanonicalDelay`] — first-order canonical delay forms
//!   `D = mu + a^T Z + (independent parts)`; covariances between paths are
//!   exact dot products (plus shared-gate independent terms).
//! * [`TimingModel`] — builds canonical forms for every max/min path of a
//!   generated benchmark, derives the nominal clock period and the tunable
//!   buffer ranges (1/8 of it, 20 steps, as in the paper), assembles
//!   covariance/correlation matrices, and samples [`ChipInstance`]s.
//! * [`ChipInstance`] — one manufactured chip: frozen max/min delays for
//!   every path; the virtual tester measures these.
//! * [`NormalSampler`] — Box–Muller standard-normal sampling over `rand`;
//!   [`hash_normal`]/[`mix_stream`] are the stateless counterpart used for
//!   order-independent injected randomness.
//! * [`DriftModel`] — deterministic aging: time-indexed multiplicative
//!   delay shifts applied to a [`ChipInstance`] for hostile-silicon
//!   re-evaluation of tuned chips.
//!
//! # Example
//!
//! ```
//! use effitest_circuit::{BenchmarkSpec, GeneratedBenchmark};
//! use effitest_ssta::{TimingModel, VariationConfig};
//!
//! let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(20), 1);
//! let model = TimingModel::build(&bench, &VariationConfig::paper());
//! let chip = model.sample_chip(42);
//! // Every frozen delay lies within a few sigma of its mean.
//! for (idx, d) in chip.setup_delays().iter().enumerate() {
//!     let mu = model.path_mean(idx);
//!     let sigma = model.path_sigma(idx);
//!     assert!((d - mu).abs() < 6.0 * sigma + 1e-9);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod canonical;
mod chip;
mod drift;
mod incremental;
mod model;
mod sampler;
mod variation;

pub use canonical::CanonicalDelay;
pub use chip::ChipInstance;
pub use drift::DriftModel;
pub use incremental::ChangeTracker;
pub use model::TimingModel;
pub use sampler::{hash_normal, mix_stream, NormalSampler};
pub use variation::{FactorSpace, VariationConfig, VariationProfile};
