use effitest_circuit::{FlipFlopId, GeneratedBenchmark, TuningBufferSpec};
use effitest_linalg::{Matrix, MultivariateGaussian};

use crate::{CanonicalDelay, ChipInstance, FactorSpace, NormalSampler, VariationConfig};

/// The statistical timing model of one generated benchmark.
///
/// Built once per benchmark (the paper's offline SSTA step), the model
/// holds a [`CanonicalDelay`] form for every required path's effective
/// setup delay `D_ij = d_ij + s_j` and every carved short path's hold bound
/// `underline(d)_ij = h_j - d_ij_min`, indexed by path position. From those
/// forms it derives:
///
/// * means, sigmas, covariances, correlations — all exact under the model;
/// * joint Gaussians over arbitrary path subsets (for the conditional
///   prediction of paper eqs. 4–5);
/// * Monte-Carlo [`ChipInstance`]s — the "manufactured chips" the virtual
///   tester measures;
/// * the nominal clock period and the derived tunable-buffer range (1/8 of
///   the period, 20 discrete steps, after Tam et al. \[19\] as cited by the
///   paper).
///
/// # Example
///
/// ```
/// use effitest_circuit::{BenchmarkSpec, GeneratedBenchmark};
/// use effitest_ssta::{TimingModel, VariationConfig};
///
/// let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(20), 1);
/// let model = TimingModel::build(&bench, &VariationConfig::paper());
/// assert_eq!(model.path_count(), bench.paths.len());
/// // Correlations are symmetric and bounded.
/// let c = model.correlation(0, 1);
/// assert!((-1.0..=1.0).contains(&c));
/// assert_eq!(model.correlation(1, 0), c);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    factor_space: FactorSpace,
    config: VariationConfig,
    /// Effective setup-delay forms (`D_ij`), one per required path.
    setup_forms: Vec<CanonicalDelay>,
    /// Hold-bound forms (`underline(d)_ij`), aligned with `setup_forms`.
    hold_forms: Vec<Option<CanonicalDelay>>,
    /// `(source, sink)` per path.
    endpoints: Vec<(FlipFlopId, FlipFlopId)>,
    /// Flip-flops carrying tunable buffers.
    buffered_ffs: Vec<FlipFlopId>,
    /// Number of gates in the netlist (for epsilon sampling).
    gate_count: usize,
    /// Nominal critical period: `max_ij mean(D_ij)`.
    nominal_period: f64,
    /// Uniform buffer range derived from the nominal period.
    buffer_spec: TuningBufferSpec,
}

impl TimingModel {
    /// Number of discrete buffer settings (paper: 20).
    pub const BUFFER_STEPS: u32 = 20;

    /// Buffer range as a fraction of the nominal clock period (paper: 1/8).
    pub const BUFFER_RANGE_FRACTION: f64 = 1.0 / 8.0;

    /// Runs SSTA over a generated benchmark with the paper's tunable
    /// buffer range (period / 8, 20 steps).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see
    /// [`VariationConfig::assert_valid`]), the benchmark's paths reference
    /// invalid netlist elements (generated benchmarks never do), or
    /// `EFFITEST_THREADS` is set to an invalid value.
    pub fn build(bench: &GeneratedBenchmark, config: &VariationConfig) -> Self {
        Self::build_with_buffer_range(
            bench,
            config,
            Self::BUFFER_RANGE_FRACTION,
            Self::BUFFER_STEPS,
        )
    }

    /// [`build`](Self::build) with an explicit worker-thread count (output
    /// is bitwise identical for every `threads` value).
    ///
    /// # Panics
    ///
    /// Same as [`build`](Self::build), minus the environment read.
    pub fn build_threaded(
        bench: &GeneratedBenchmark,
        config: &VariationConfig,
        threads: usize,
    ) -> Self {
        Self::build_with_buffer_range_threaded(
            bench,
            config,
            Self::BUFFER_RANGE_FRACTION,
            Self::BUFFER_STEPS,
            threads,
        )
    }

    /// [`build`](Self::build) with an explicit tuning-range axis: the
    /// buffer range spans `range_fraction` of the nominal clock period
    /// (paper: 1/8) over `steps` discrete settings (paper: 20). The
    /// scenario matrix sweeps this axis; everything else is identical to
    /// [`build`](Self::build).
    ///
    /// # Panics
    ///
    /// Panics on an invalid `config`, a non-positive / non-finite
    /// `range_fraction`, or `steps < 2`.
    pub fn build_with_buffer_range(
        bench: &GeneratedBenchmark,
        config: &VariationConfig,
        range_fraction: f64,
        steps: u32,
    ) -> Self {
        let threads = match effitest_parallel::threads::threads_from_env() {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        };
        Self::build_with_buffer_range_threaded(bench, config, range_fraction, steps, threads)
    }

    /// [`build_with_buffer_range`](Self::build_with_buffer_range) with an
    /// explicit worker-thread count: the per-path canonical forms fan out
    /// over `threads` workers and are committed in path order, so the
    /// model (including the `max`-folded nominal period) is bitwise
    /// identical for every `threads` value — pinned against
    /// [`build_with_buffer_range_reference`](Self::build_with_buffer_range_reference)
    /// by the differential tests.
    ///
    /// # Panics
    ///
    /// Same as
    /// [`build_with_buffer_range_reference`](Self::build_with_buffer_range_reference).
    pub fn build_with_buffer_range_threaded(
        bench: &GeneratedBenchmark,
        config: &VariationConfig,
        range_fraction: f64,
        steps: u32,
        threads: usize,
    ) -> Self {
        config.assert_valid();
        assert!(
            range_fraction.is_finite() && range_fraction > 0.0,
            "buffer range fraction must be positive and finite"
        );
        assert!(steps >= 2, "buffers need at least 2 discrete settings");
        let factor_space = FactorSpace::new(bench.netlist.die(), config.grid_dim);
        let n = bench.paths.len();
        let paths: Vec<effitest_circuit::PathView<'_>> = bench.paths.iter().collect();

        // Each path's forms are a pure function of the path; the serial
        // commit below folds the nominal period in index order, exactly as
        // the serial reference does.
        let per_path = effitest_parallel::par_map(threads, n, |idx| {
            let path = paths[idx];
            let sink = bench.netlist.flip_flop(path.sink).expect("valid sink");
            let mut form = chain_form(bench, config, &factor_space, path.gates, 1.0);
            form.mean += sink.setup;
            let hold = bench.short_paths[idx].as_ref().map(|sp| {
                debug_assert_eq!(sp.source, path.source);
                debug_assert_eq!(sp.sink, path.sink);
                // underline(d) = h_j - d_min: negate the chain form.
                let mut h = chain_form(bench, config, &factor_space, &sp.gates, -1.0);
                h.mean += sink.hold;
                h
            });
            (form, hold, (path.source, path.sink))
        });

        let mut setup_forms = Vec::with_capacity(n);
        let mut hold_forms = Vec::with_capacity(n);
        let mut endpoints = Vec::with_capacity(n);
        let mut nominal_period = 0.0_f64;
        for (form, hold, ends) in per_path {
            nominal_period = nominal_period.max(form.mean);
            setup_forms.push(form);
            hold_forms.push(hold);
            endpoints.push(ends);
        }

        let width = nominal_period * range_fraction;
        let buffer_spec = TuningBufferSpec::centered(width, steps);

        TimingModel {
            factor_space,
            config: config.clone(),
            setup_forms,
            hold_forms,
            endpoints,
            buffered_ffs: bench.netlist.buffered_flip_flops(),
            gate_count: bench.netlist.gate_count(),
            nominal_period,
            buffer_spec,
        }
    }

    /// The original serial per-path loop, retained as the differential
    /// reference the threaded build is pinned against.
    ///
    /// # Panics
    ///
    /// Panics on an invalid `config`, a non-positive / non-finite
    /// `range_fraction`, or `steps < 2`.
    pub fn build_with_buffer_range_reference(
        bench: &GeneratedBenchmark,
        config: &VariationConfig,
        range_fraction: f64,
        steps: u32,
    ) -> Self {
        config.assert_valid();
        assert!(
            range_fraction.is_finite() && range_fraction > 0.0,
            "buffer range fraction must be positive and finite"
        );
        assert!(steps >= 2, "buffers need at least 2 discrete settings");
        let factor_space = FactorSpace::new(bench.netlist.die(), config.grid_dim);
        let n = bench.paths.len();

        let mut setup_forms = Vec::with_capacity(n);
        let mut hold_forms = Vec::with_capacity(n);
        let mut endpoints = Vec::with_capacity(n);
        let mut nominal_period = 0.0_f64;

        for (idx, path) in bench.paths.iter().enumerate() {
            let sink = bench.netlist.flip_flop(path.sink).expect("valid sink");
            let mut form = chain_form(bench, config, &factor_space, path.gates, 1.0);
            form.mean += sink.setup;
            nominal_period = nominal_period.max(form.mean);
            endpoints.push((path.source, path.sink));

            let hold = bench.short_paths[idx].as_ref().map(|sp| {
                debug_assert_eq!(sp.source, path.source);
                debug_assert_eq!(sp.sink, path.sink);
                // underline(d) = h_j - d_min: negate the chain form.
                let mut h = chain_form(bench, config, &factor_space, &sp.gates, -1.0);
                h.mean += sink.hold;
                h
            });

            setup_forms.push(form);
            hold_forms.push(hold);
        }

        let width = nominal_period * range_fraction;
        let buffer_spec = TuningBufferSpec::centered(width, steps);

        TimingModel {
            factor_space,
            config: config.clone(),
            setup_forms,
            hold_forms,
            endpoints,
            buffered_ffs: bench.netlist.buffered_flip_flops(),
            gate_count: bench.netlist.gate_count(),
            nominal_period,
            buffer_spec,
        }
    }

    /// Number of required paths.
    pub fn path_count(&self) -> usize {
        self.setup_forms.len()
    }

    /// The shared factor space.
    pub fn factor_space(&self) -> &FactorSpace {
        &self.factor_space
    }

    /// The variation configuration the model was built with.
    pub fn config(&self) -> &VariationConfig {
        &self.config
    }

    /// Canonical form of path `idx`'s effective setup delay.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn setup_form(&self, idx: usize) -> &CanonicalDelay {
        &self.setup_forms[idx]
    }

    /// Canonical form of path `idx`'s hold bound, if a short path exists.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn hold_form(&self, idx: usize) -> Option<&CanonicalDelay> {
        self.hold_forms[idx].as_ref()
    }

    /// Mean of `D_ij` for path `idx`.
    pub fn path_mean(&self, idx: usize) -> f64 {
        self.setup_forms[idx].mean
    }

    /// Standard deviation of `D_ij` for path `idx`.
    pub fn path_sigma(&self, idx: usize) -> f64 {
        self.setup_forms[idx].sigma()
    }

    /// `(source, sink)` flip-flops of path `idx`.
    pub fn endpoints(&self, idx: usize) -> (FlipFlopId, FlipFlopId) {
        self.endpoints[idx]
    }

    /// Flip-flops that carry tunable buffers.
    pub fn buffered_ffs(&self) -> &[FlipFlopId] {
        &self.buffered_ffs
    }

    /// Nominal critical period (`max_ij mean(D_ij)`), the paper's
    /// "original clock period" from which buffer ranges derive.
    pub fn nominal_period(&self) -> f64 {
        self.nominal_period
    }

    /// The uniform tunable-buffer range: centered, width = period / 8,
    /// 20 discrete steps.
    pub fn buffer_spec(&self) -> TuningBufferSpec {
        self.buffer_spec
    }

    /// Covariance of `D_i` and `D_j`.
    pub fn covariance(&self, i: usize, j: usize) -> f64 {
        self.setup_forms[i].covariance(&self.setup_forms[j])
    }

    /// Correlation of `D_i` and `D_j`.
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        self.setup_forms[i].correlation(&self.setup_forms[j])
    }

    /// Covariance matrix over the listed paths.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn covariance_matrix(&self, idx: &[usize]) -> Matrix {
        let n = idx.len();
        let mut m = Matrix::zeros(n, n);
        for a in 0..n {
            for b in a..n {
                let cov = self.covariance(idx[a], idx[b]);
                m[(a, b)] = cov;
                m[(b, a)] = cov;
            }
        }
        m
    }

    /// Joint Gaussian of `D` over the listed paths (means + covariance).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or the covariance assembly
    /// produces a malformed matrix (cannot happen for forms built by
    /// [`build`](Self::build)).
    pub fn gaussian(&self, idx: &[usize]) -> MultivariateGaussian {
        let mean: Vec<f64> = idx.iter().map(|&i| self.path_mean(i)).collect();
        let cov = self.covariance_matrix(idx);
        MultivariateGaussian::new(mean, cov).expect("covariance is symmetric by construction")
    }

    /// Samples one manufactured chip.
    ///
    /// The same `(model, seed)` always yields the same chip. Different
    /// paths on the same chip share the spatial factors and any shared
    /// gates' independent components, so measured delays exhibit exactly
    /// the correlations the model predicts.
    pub fn sample_chip(&self, seed: u64) -> ChipInstance {
        let mut sampler = NormalSampler::seeded(seed.wrapping_mul(0x9E3779B97F4A7C15));
        let mut z = vec![0.0; self.factor_space.len()];
        sampler.fill(&mut z);
        let mut gate_eps = vec![0.0; self.gate_count];
        sampler.fill(&mut gate_eps);

        let n = self.path_count();
        let mut setup = Vec::with_capacity(n);
        let mut hold = Vec::with_capacity(n);
        for i in 0..n {
            // One per-path epsilon drives the `extra` component of both the
            // setup and hold forms of the same path (they describe the same
            // physical cone).
            let path_eps = sampler.next_normal();
            setup.push(self.setup_forms[i].evaluate(&z, &gate_eps, path_eps));
            hold.push(self.hold_forms[i].as_ref().map(|f| f.evaluate(&z, &gate_eps, path_eps)));
        }
        ChipInstance::new(seed, setup, hold)
    }

    /// Samples `count` chips with seeds `base_seed..base_seed + count`.
    pub fn sample_chips(&self, base_seed: u64, count: usize) -> Vec<ChipInstance> {
        (0..count as u64).map(|k| self.sample_chip(base_seed + k)).collect()
    }

    /// A copy of the model with every path sigma inflated by `factor`
    /// while all cross-path covariances stay unchanged (the paper's Fig.-7
    /// experiment: +10% sigma grows only the purely random delay parts).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    pub fn with_inflated_sigma(&self, factor: f64) -> TimingModel {
        let mut out = self.clone();
        out.setup_forms = self.setup_forms.iter().map(|f| f.with_inflated_sigma(factor)).collect();
        out.hold_forms = self
            .hold_forms
            .iter()
            .map(|h| h.as_ref().map(|f| f.with_inflated_sigma(factor)))
            .collect();
        out
    }
}

/// Builds the canonical form of a gate chain, scaled by `sign` (+1 for max
/// paths, -1 for hold bounds which subtract the chain delay).
fn chain_form(
    bench: &GeneratedBenchmark,
    config: &VariationConfig,
    fs: &FactorSpace,
    gates: &[effitest_circuit::GateId],
    sign: f64,
) -> CanonicalDelay {
    let sigmas = config.sigmas();
    let rho = config.global_correlation;
    let w_global = rho.sqrt();
    let w_cell = (1.0 - rho).sqrt();

    let mut mean = 0.0;
    let mut coeffs = vec![0.0; fs.len()];
    let mut indep: Vec<(u32, f64)> = Vec::with_capacity(gates.len());

    for &gid in gates {
        let gate = bench.netlist.gate(gid).expect("path gates are valid");
        let d = gate.kind.nominal_delay();
        mean += sign * d;
        let sens = gate.kind.sensitivity();
        let sens_arr = [sens.length, sens.oxide, sens.threshold];
        let cell = fs.cell_of(&gate.location);
        for (p, (&sigma, &s)) in sigmas.iter().zip(&sens_arr).enumerate() {
            let amp = sign * d * s * sigma;
            coeffs[fs.global_factor(p)] += amp * w_global;
            coeffs[fs.cell_factor(p, cell)] += amp * w_cell;
        }
        indep.push((gid.index() as u32, sign * d * config.local_sigma));
    }
    indep.sort_unstable_by_key(|&(g, _)| g);
    CanonicalDelay { mean, coeffs, indep, extra: 0.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use effitest_circuit::BenchmarkSpec;

    fn small_model() -> (GeneratedBenchmark, TimingModel) {
        let bench =
            GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(10), 1);
        let model = TimingModel::build(&bench, &VariationConfig::paper());
        (bench, model)
    }

    #[test]
    fn threaded_build_matches_serial_reference() {
        let bench =
            GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(10), 1);
        let config = VariationConfig::paper();
        let reference = TimingModel::build_with_buffer_range_reference(
            &bench,
            &config,
            TimingModel::BUFFER_RANGE_FRACTION,
            TimingModel::BUFFER_STEPS,
        );
        for threads in [1, 4, 8] {
            let threaded = TimingModel::build_threaded(&bench, &config, threads);
            assert_eq!(threaded, reference, "threads {threads}");
        }
    }

    #[test]
    fn forms_cover_all_paths() {
        let (bench, model) = small_model();
        assert_eq!(model.path_count(), bench.paths.len());
        for i in 0..model.path_count() {
            assert!(model.path_mean(i) > 0.0);
            assert!(model.path_sigma(i) > 0.0);
        }
    }

    #[test]
    fn nominal_period_is_max_mean() {
        let (_, model) = small_model();
        let max_mean = (0..model.path_count()).map(|i| model.path_mean(i)).fold(0.0_f64, f64::max);
        assert_eq!(model.nominal_period(), max_mean);
        let spec = model.buffer_spec();
        assert!((spec.width() - model.nominal_period() / 8.0).abs() < 1e-9);
        assert_eq!(spec.steps(), 20);
        assert!((spec.min() + spec.max()).abs() < 1e-9, "centered");
    }

    #[test]
    fn explicit_buffer_range_drives_the_spec() {
        let (bench, model) = small_model();
        let wide =
            TimingModel::build_with_buffer_range(&bench, &VariationConfig::paper(), 0.25, 10);
        // Same timing, different tuning axis.
        assert_eq!(wide.nominal_period(), model.nominal_period());
        assert_eq!(wide.path_count(), model.path_count());
        assert!((wide.buffer_spec().width() - wide.nominal_period() * 0.25).abs() < 1e-9);
        assert_eq!(wide.buffer_spec().steps(), 10);
        // The default build is exactly the paper point of the axis.
        let paper = TimingModel::build_with_buffer_range(
            &bench,
            &VariationConfig::paper(),
            TimingModel::BUFFER_RANGE_FRACTION,
            TimingModel::BUFFER_STEPS,
        );
        assert_eq!(paper.buffer_spec(), model.buffer_spec());
    }

    #[test]
    #[should_panic(expected = "range fraction")]
    fn zero_buffer_range_is_rejected() {
        let (bench, _) = small_model();
        let _ = TimingModel::build_with_buffer_range(&bench, &VariationConfig::paper(), 0.0, 20);
    }

    #[test]
    fn same_cluster_paths_are_highly_correlated() {
        let (bench, model) = small_model();
        // Find two paths sharing a sink (same cone): correlation must be
        // very high.
        let mut best: Option<(usize, usize)> = None;
        'outer: for i in 0..bench.paths.len() {
            for j in (i + 1)..bench.paths.len() {
                let pi = bench.paths.path(effitest_circuit::PathId::new(i as u32));
                let pj = bench.paths.path(effitest_circuit::PathId::new(j as u32));
                if pi.sink == pj.sink {
                    best = Some((i, j));
                    break 'outer;
                }
            }
        }
        if let Some((i, j)) = best {
            assert!(
                model.correlation(i, j) > 0.8,
                "shared-cone correlation too low: {}",
                model.correlation(i, j)
            );
        }
        // And correlations are symmetric, bounded, 1 on the diagonal.
        for i in 0..model.path_count().min(5) {
            assert!((model.correlation(i, i) - 1.0).abs() < 1e-9);
            for j in 0..model.path_count().min(5) {
                assert!((model.correlation(i, j) - model.correlation(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn covariance_matrix_matches_pairwise() {
        let (_, model) = small_model();
        let idx = [0_usize, 1, 2];
        let m = model.covariance_matrix(&idx);
        for (a, &i) in idx.iter().enumerate() {
            for (b, &j) in idx.iter().enumerate() {
                assert!((m[(a, b)] - model.covariance(i, j)).abs() < 1e-12);
            }
        }
        assert!(m.is_symmetric(1e-12));
    }

    #[test]
    fn sampled_moments_match_model() {
        let (_, model) = small_model();
        let n_chips = 4000;
        let chips = model.sample_chips(100, n_chips);
        let idx = 0;
        let samples: Vec<f64> = chips.iter().map(|c| c.setup_delay(idx)).collect();
        let mean = effitest_linalg::stats::mean(&samples);
        let sd = effitest_linalg::stats::std_dev(&samples);
        assert!(
            (mean - model.path_mean(idx)).abs()
                < 4.0 * model.path_sigma(idx) / (n_chips as f64).sqrt() + 1e-9,
            "sample mean {mean} vs model {}",
            model.path_mean(idx)
        );
        assert!(
            (sd - model.path_sigma(idx)).abs() / model.path_sigma(idx) < 0.08,
            "sample sd {sd} vs model {}",
            model.path_sigma(idx)
        );
    }

    #[test]
    fn sampled_correlation_matches_model() {
        let (_, model) = small_model();
        let chips = model.sample_chips(7, 3000);
        let a: Vec<f64> = chips.iter().map(|c| c.setup_delay(0)).collect();
        let b: Vec<f64> = chips.iter().map(|c| c.setup_delay(1)).collect();
        let emp = effitest_linalg::stats::correlation(&a, &b);
        let model_corr = model.correlation(0, 1);
        assert!((emp - model_corr).abs() < 0.08, "empirical {emp} vs model {model_corr}");
    }

    #[test]
    fn chips_are_deterministic_per_seed() {
        let (_, model) = small_model();
        assert_eq!(model.sample_chip(5), model.sample_chip(5));
        assert_ne!(model.sample_chip(5), model.sample_chip(6));
    }

    #[test]
    fn hold_bounds_are_below_setup_delays() {
        // underline(d) = h - d_min must sit far below D = d_max + s for any
        // sane chip.
        let (_, model) = small_model();
        let chip = model.sample_chip(3);
        for i in 0..model.path_count() {
            if let Some(h) = chip.hold_bound(i) {
                assert!(h < chip.setup_delay(i));
            }
        }
    }

    #[test]
    fn inflated_sigma_preserves_covariances() {
        let (_, model) = small_model();
        let inflated = model.with_inflated_sigma(1.1);
        for i in 0..model.path_count().min(4) {
            assert!((inflated.path_sigma(i) - 1.1 * model.path_sigma(i)).abs() < 1e-9);
            for j in 0..model.path_count().min(4) {
                if i != j {
                    assert!((inflated.covariance(i, j) - model.covariance(i, j)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn gaussian_matches_model_statistics() {
        let (_, model) = small_model();
        let idx = [0_usize, 2, 4];
        let g = model.gaussian(&idx);
        assert_eq!(g.dim(), 3);
        for (pos, &i) in idx.iter().enumerate() {
            assert!((g.mean()[pos] - model.path_mean(i)).abs() < 1e-12);
            assert!((g.covariance()[(pos, pos)] - model.path_sigma(i).powi(2)).abs() < 1e-9);
        }
    }

    #[test]
    fn outlier_paths_have_low_correlation_to_cluster_paths() {
        let (bench, model) = small_model();
        // Outlier paths are the last generated ones (background sinks).
        // Check that at least one pair of paths has correlation well below
        // the intra-cluster level.
        let n = bench.paths.len();
        let mut min_corr = 1.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                min_corr = min_corr.min(model.correlation(i, j));
            }
        }
        assert!(min_corr < 0.6, "expected some weakly correlated pair, min={min_corr}");
    }
}
