use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic standard-normal sampler (Box–Muller over `StdRng`).
///
/// Hand-rolled rather than pulling in `rand_distr`: the reproduction brief
/// limits external dependencies, and Box–Muller is exact.
///
/// # Example
///
/// ```
/// use effitest_ssta::NormalSampler;
///
/// let mut s = NormalSampler::seeded(7);
/// let xs: Vec<f64> = (0..1000).map(|_| s.next_normal()).collect();
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!(mean.abs() < 0.2);
/// ```
#[derive(Debug)]
pub struct NormalSampler {
    rng: StdRng,
    cached: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler from a seed.
    pub fn seeded(seed: u64) -> Self {
        NormalSampler { rng: StdRng::seed_from_u64(seed), cached: None }
    }

    /// Draws one standard-normal value.
    pub fn next_normal(&mut self) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        // Box–Muller: two uniforms -> two independent normals.
        loop {
            let u1: f64 = self.rng.random();
            let u2: f64 = self.rng.random();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.cached = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Fills a vector with standard-normal draws.
    pub fn fill(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.next_normal();
        }
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn next_uniform(&mut self) -> f64 {
        self.rng.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<f64> = {
            let mut s = NormalSampler::seeded(11);
            (0..10).map(|_| s.next_normal()).collect()
        };
        let b: Vec<f64> = {
            let mut s = NormalSampler::seeded(11);
            (0..10).map(|_| s.next_normal()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut s = NormalSampler::seeded(12);
            (0..10).map(|_| s.next_normal()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn moments_are_standard_normal() {
        let mut s = NormalSampler::seeded(1);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut sum4 = 0.0;
        for _ in 0..n {
            let x = s.next_normal();
            sum += x;
            sum2 += x * x;
            sum4 += x * x * x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let kurt = sum4 / n as f64 / (var * var);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn fill_populates_all_entries() {
        let mut s = NormalSampler::seeded(3);
        let mut v = vec![0.0; 64];
        s.fill(&mut v);
        // Statistically impossible for any entry to remain exactly 0.
        assert!(v.iter().all(|&x| x != 0.0));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut s = NormalSampler::seeded(5);
        for _ in 0..1000 {
            let u = s.next_uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
