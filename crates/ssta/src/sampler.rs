use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The SplitMix64 output function: a high-quality 64-bit mixer.
///
/// Used to build *stateless* deterministic random streams: hash a tuple of
/// identifying integers into a stream id with [`mix_stream`], then map it
/// to a standard-normal draw with [`hash_normal`]. Unlike
/// [`NormalSampler`], no sequential state is involved, so a draw depends
/// only on the identifiers — independent of evaluation order, thread
/// count, or how many other draws happened first. The tester's injected
/// measurement noise and the aging [`DriftModel`](crate::DriftModel) both
/// rely on this for their bitwise-reproducibility contract.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one identifier into a stream id (SplitMix64 over the running
/// hash XOR the new word). Chain calls to combine several identifiers:
///
/// ```
/// use effitest_ssta::{hash_normal, mix_stream};
///
/// let stream = mix_stream(mix_stream(42, 7), 3); // (seed, chip, path)
/// let g = hash_normal(stream);
/// assert_eq!(g, hash_normal(mix_stream(mix_stream(42, 7), 3)));
/// ```
pub fn mix_stream(state: u64, word: u64) -> u64 {
    splitmix64(state ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Maps a stream id to one standard-normal draw, statelessly.
///
/// Two SplitMix64 evaluations give two uniforms, combined by Box–Muller.
/// The first uniform is kept in `(0, 1)` by construction (never exactly
/// zero), so the result is always finite. Same stream id, same draw — on
/// any thread, in any order.
pub fn hash_normal(stream: u64) -> f64 {
    let a = splitmix64(stream);
    let b = splitmix64(a);
    // 53 high bits -> uniform; +0.5 keeps u1 strictly inside (0, 1).
    let u1 = ((a >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    let u2 = (b >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic standard-normal sampler (Box–Muller over `StdRng`).
///
/// Hand-rolled rather than pulling in `rand_distr`: the reproduction brief
/// limits external dependencies, and Box–Muller is exact.
///
/// # Example
///
/// ```
/// use effitest_ssta::NormalSampler;
///
/// let mut s = NormalSampler::seeded(7);
/// let xs: Vec<f64> = (0..1000).map(|_| s.next_normal()).collect();
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!(mean.abs() < 0.2);
/// ```
#[derive(Debug)]
pub struct NormalSampler {
    rng: StdRng,
    cached: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler from a seed.
    pub fn seeded(seed: u64) -> Self {
        NormalSampler { rng: StdRng::seed_from_u64(seed), cached: None }
    }

    /// Draws one standard-normal value.
    pub fn next_normal(&mut self) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        // Box–Muller: two uniforms -> two independent normals.
        loop {
            let u1: f64 = self.rng.random();
            let u2: f64 = self.rng.random();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.cached = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Fills a vector with standard-normal draws.
    pub fn fill(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.next_normal();
        }
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn next_uniform(&mut self) -> f64 {
        self.rng.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<f64> = {
            let mut s = NormalSampler::seeded(11);
            (0..10).map(|_| s.next_normal()).collect()
        };
        let b: Vec<f64> = {
            let mut s = NormalSampler::seeded(11);
            (0..10).map(|_| s.next_normal()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut s = NormalSampler::seeded(12);
            (0..10).map(|_| s.next_normal()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn moments_are_standard_normal() {
        let mut s = NormalSampler::seeded(1);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut sum4 = 0.0;
        for _ in 0..n {
            let x = s.next_normal();
            sum += x;
            sum2 += x * x;
            sum4 += x * x * x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let kurt = sum4 / n as f64 / (var * var);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn fill_populates_all_entries() {
        let mut s = NormalSampler::seeded(3);
        let mut v = vec![0.0; 64];
        s.fill(&mut v);
        // Statistically impossible for any entry to remain exactly 0.
        assert!(v.iter().all(|&x| x != 0.0));
    }

    #[test]
    fn hash_normal_is_stateless_and_finite() {
        // Same stream, same draw — independent of evaluation order.
        let a = hash_normal(mix_stream(mix_stream(1, 2), 3));
        let b = hash_normal(mix_stream(mix_stream(1, 2), 3));
        assert_eq!(a, b);
        // Distinct streams decorrelate.
        assert_ne!(a, hash_normal(mix_stream(mix_stream(1, 2), 4)));
        // Always finite, including the all-zeros stream.
        for s in [0_u64, 1, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            assert!(hash_normal(s).is_finite());
        }
    }

    #[test]
    fn hash_normal_moments_are_standard_normal() {
        let n = 200_000_u64;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for k in 0..n {
            let x = hash_normal(mix_stream(99, k));
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut s = NormalSampler::seeded(5);
        for _ in 0..1000 {
            let u = s.next_uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
