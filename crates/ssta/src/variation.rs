use effitest_circuit::Point;

/// The process-variation model of the paper's experimental setup.
///
/// Three parameters vary: transistor length, oxide thickness, and threshold
/// voltage, with relative standard deviations of 15.7%, 5.3%, and 4.4%.
/// Spatial structure follows the paper: devices side by side are perfectly
/// correlated, while the die-wide (global) correlation floor is 0.25. This
/// is realized with a two-level factor decomposition per parameter:
///
/// ```text
/// dp(cell) = sqrt(rho_g) * G_p  +  sqrt(1 - rho_g) * C_p[cell]
/// ```
///
/// where `G_p` is one global standard normal per parameter, `C_p[cell]` one
/// per grid cell, and `rho_g = 0.25`. Two gates in the same cell see the
/// same `dp` (correlation 1); gates in different cells correlate at
/// `rho_g`.
///
/// On top of the parameter-driven (fully spatially correlated) part, each
/// gate carries a small *independent* random delay component
/// (`local_sigma`, relative to its nominal delay) modeling purely random
/// variation; the paper's §3.4 relies on estimated delays retaining
/// non-zero variance, and Fig. 7 studies an inflated-random-variation
/// regime.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationConfig {
    /// Relative sigma of transistor length variation (paper: 0.157).
    pub sigma_length: f64,
    /// Relative sigma of oxide thickness variation (paper: 0.053).
    pub sigma_oxide: f64,
    /// Relative sigma of threshold voltage variation (paper: 0.044).
    pub sigma_vth: f64,
    /// Die-wide correlation of the parameter variations (paper: 0.25).
    pub global_correlation: f64,
    /// Grid cells per die edge for the spatial model (cells are
    /// independent; gates within a cell are perfectly correlated).
    pub grid_dim: usize,
    /// Relative sigma of the per-gate independent random component.
    pub local_sigma: f64,
}

impl VariationConfig {
    /// The paper's experimental configuration.
    ///
    /// `local_sigma` is the one knob the paper does not state explicitly
    /// (its randomness came from the industrial library): 0.12 calibrates
    /// the intra-cluster correlations into the regime where both of the
    /// paper's headline effects emerge — selected-path counts (`n_pt`) at
    /// a few percent of `n_p` (correlations stay around 0.95) *and* enough
    /// per-path delay imbalance for the tuning buffers to rescue chips
    /// (pure clusterwide variation cannot be tuned away, only imbalance
    /// can).
    pub fn paper() -> Self {
        VariationConfig {
            sigma_length: 0.157,
            sigma_oxide: 0.053,
            sigma_vth: 0.044,
            global_correlation: 0.25,
            grid_dim: 8,
            local_sigma: 0.12,
        }
    }

    /// Relative sigmas as an array ordered `[length, oxide, vth]`.
    pub fn sigmas(&self) -> [f64; 3] {
        [self.sigma_length, self.sigma_oxide, self.sigma_vth]
    }

    /// Validates the configuration, panicking on nonsense values.
    ///
    /// # Panics
    ///
    /// Panics if any sigma is negative, the correlation is outside `[0, 1]`,
    /// or the grid dimension is zero.
    pub fn assert_valid(&self) {
        assert!(self.sigma_length >= 0.0, "negative length sigma");
        assert!(self.sigma_oxide >= 0.0, "negative oxide sigma");
        assert!(self.sigma_vth >= 0.0, "negative vth sigma");
        assert!(
            (0.0..=1.0).contains(&self.global_correlation),
            "global correlation must be in [0, 1]"
        );
        assert!(self.grid_dim >= 1, "grid dimension must be at least 1");
        assert!(self.local_sigma >= 0.0, "negative local sigma");
    }
}

impl Default for VariationConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Named points on the variation-structure axis of the scenario matrix.
///
/// The paper evaluates one variation structure (spatially correlated, the
/// exact numbers of its experimental setup); the value of grouping,
/// prediction, and alignment depends heavily on that structure, so the
/// scenario matrix sweeps it. Each profile is a deterministic, seedable
/// recipe producing a complete [`VariationConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariationProfile {
    /// The paper's setup verbatim: strong spatial correlation (perfect
    /// within a grid cell, 0.25 die-wide) plus moderate per-gate
    /// randomness. See [`VariationConfig::paper`].
    SpatiallyCorrelated,
    /// Essentially independent gate delays: the spatially correlated
    /// parameter part is scaled far down, the grid is fine, and the
    /// per-gate random component dominates — the adversarial regime for
    /// correlation-based grouping and prediction.
    Independent,
    /// A few dominant principal components: very high die-wide
    /// correlation over a coarse 2x2 grid with little per-gate noise, so
    /// a handful of factors explain almost all delay variance and PCA
    /// retains very few components per group.
    FewDominantPcs,
    /// A high-sigma tail regime: every sigma inflated well past the
    /// paper's values, producing many chips outside the assumed
    /// `mu ± 3 sigma` windows — the regime that stresses contradiction
    /// handling and prediction conservatism.
    HighSigmaTail,
}

impl VariationProfile {
    /// All profiles, the paper's setup first.
    pub fn all() -> [VariationProfile; 4] {
        [
            VariationProfile::SpatiallyCorrelated,
            VariationProfile::Independent,
            VariationProfile::FewDominantPcs,
            VariationProfile::HighSigmaTail,
        ]
    }

    /// Short token-safe name (used in scenario-report ids).
    pub fn name(&self) -> &'static str {
        match self {
            VariationProfile::SpatiallyCorrelated => "spatial",
            VariationProfile::Independent => "independent",
            VariationProfile::FewDominantPcs => "fewpc",
            VariationProfile::HighSigmaTail => "tail",
        }
    }

    /// The complete variation configuration this profile stands for.
    pub fn config(&self) -> VariationConfig {
        let paper = VariationConfig::paper();
        match self {
            VariationProfile::SpatiallyCorrelated => paper,
            VariationProfile::Independent => VariationConfig {
                sigma_length: paper.sigma_length * 0.35,
                sigma_oxide: paper.sigma_oxide * 0.35,
                sigma_vth: paper.sigma_vth * 0.35,
                global_correlation: 0.0,
                grid_dim: 16,
                local_sigma: 0.30,
            },
            VariationProfile::FewDominantPcs => VariationConfig {
                global_correlation: 0.85,
                grid_dim: 2,
                local_sigma: 0.04,
                ..paper
            },
            VariationProfile::HighSigmaTail => VariationConfig {
                sigma_length: paper.sigma_length * 1.6,
                sigma_oxide: paper.sigma_oxide * 1.6,
                sigma_vth: paper.sigma_vth * 1.6,
                local_sigma: 0.20,
                ..paper
            },
        }
    }
}

impl std::fmt::Display for VariationProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of varied process parameters (length, oxide, threshold).
pub const N_PARAMS: usize = 3;

/// Indexing of the shared standard-normal factors.
///
/// Factors are laid out as: for each parameter `p` (3 of them), one global
/// factor followed by `grid_dim^2` cell factors. The total shared-factor
/// count is `3 * (1 + grid_dim^2)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorSpace {
    grid_dim: usize,
    die_x0: f64,
    die_y0: f64,
    cell_w: f64,
    cell_h: f64,
}

impl FactorSpace {
    /// Creates the factor space for a die and grid dimension.
    pub fn new(die: effitest_circuit::Rect, grid_dim: usize) -> Self {
        assert!(grid_dim >= 1);
        FactorSpace {
            grid_dim,
            die_x0: die.x0,
            die_y0: die.y0,
            cell_w: die.width() / grid_dim as f64,
            cell_h: die.height() / grid_dim as f64,
        }
    }

    /// Total number of shared factors.
    pub fn len(&self) -> usize {
        N_PARAMS * (1 + self.grid_dim * self.grid_dim)
    }

    /// `true` if there are no factors (impossible by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grid dimension (cells per edge).
    pub fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    /// The grid cell containing a point (clamped to the die).
    pub fn cell_of(&self, p: &Point) -> usize {
        let cx = ((p.x - self.die_x0) / self.cell_w).floor() as isize;
        let cy = ((p.y - self.die_y0) / self.cell_h).floor() as isize;
        let g = self.grid_dim as isize;
        let cx = cx.clamp(0, g - 1) as usize;
        let cy = cy.clamp(0, g - 1) as usize;
        cy * self.grid_dim + cx
    }

    /// Index of parameter `p`'s global factor.
    pub fn global_factor(&self, param: usize) -> usize {
        debug_assert!(param < N_PARAMS);
        param * (1 + self.grid_dim * self.grid_dim)
    }

    /// Index of parameter `p`'s factor for grid cell `cell`.
    pub fn cell_factor(&self, param: usize, cell: usize) -> usize {
        debug_assert!(param < N_PARAMS);
        debug_assert!(cell < self.grid_dim * self.grid_dim);
        self.global_factor(param) + 1 + cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use effitest_circuit::Rect;

    #[test]
    fn paper_values() {
        let c = VariationConfig::paper();
        assert_eq!(c.sigmas(), [0.157, 0.053, 0.044]);
        assert_eq!(c.global_correlation, 0.25);
        c.assert_valid();
        assert_eq!(VariationConfig::default(), c);
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn rejects_bad_correlation() {
        let mut c = VariationConfig::paper();
        c.global_correlation = 1.5;
        c.assert_valid();
    }

    #[test]
    fn profiles_are_valid_named_and_distinct() {
        let mut names = std::collections::HashSet::new();
        for p in VariationProfile::all() {
            let c = p.config();
            c.assert_valid();
            assert!(names.insert(p.name()), "duplicate profile name {}", p.name());
            assert!(p.name().chars().all(|ch| ch.is_ascii_alphanumeric()));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(VariationProfile::SpatiallyCorrelated.config(), VariationConfig::paper());
        // The independent profile really is dominated by per-gate noise.
        let ind = VariationProfile::Independent.config();
        assert_eq!(ind.global_correlation, 0.0);
        assert!(ind.local_sigma > ind.sigma_length);
        // The few-PC profile concentrates variance in few factors.
        let few = VariationProfile::FewDominantPcs.config();
        assert!(few.global_correlation > 0.8);
        assert!(few.grid_dim <= 2);
        // The tail profile inflates every sigma.
        let tail = VariationProfile::HighSigmaTail.config();
        assert!(tail.sigma_length > VariationConfig::paper().sigma_length);
    }

    #[test]
    fn factor_layout_is_dense_and_disjoint() {
        let fs = FactorSpace::new(Rect::new(0.0, 0.0, 100.0, 100.0), 4);
        assert_eq!(fs.len(), 3 * (1 + 16));
        let mut seen = std::collections::HashSet::new();
        for p in 0..N_PARAMS {
            assert!(seen.insert(fs.global_factor(p)));
            for cell in 0..16 {
                assert!(seen.insert(fs.cell_factor(p, cell)));
            }
        }
        assert_eq!(seen.len(), fs.len());
        assert!(seen.iter().all(|&i| i < fs.len()));
    }

    #[test]
    fn cell_mapping_covers_the_die() {
        let fs = FactorSpace::new(Rect::new(0.0, 0.0, 80.0, 80.0), 4);
        assert_eq!(fs.cell_of(&Point::new(0.0, 0.0)), 0);
        assert_eq!(fs.cell_of(&Point::new(79.9, 0.0)), 3);
        assert_eq!(fs.cell_of(&Point::new(0.0, 79.9)), 12);
        assert_eq!(fs.cell_of(&Point::new(79.9, 79.9)), 15);
        // Edge / outside points clamp.
        assert_eq!(fs.cell_of(&Point::new(80.0, 80.0)), 15);
        assert_eq!(fs.cell_of(&Point::new(-5.0, -5.0)), 0);
    }

    #[test]
    fn same_cell_points_share_cell() {
        let fs = FactorSpace::new(Rect::new(0.0, 0.0, 100.0, 100.0), 8);
        let a = Point::new(10.0, 10.0);
        let b = Point::new(11.0, 11.5);
        assert_eq!(fs.cell_of(&a), fs.cell_of(&b));
        let far = Point::new(90.0, 90.0);
        assert_ne!(fs.cell_of(&a), fs.cell_of(&far));
    }

    #[test]
    fn offset_die_is_handled() {
        let fs = FactorSpace::new(Rect::new(50.0, 50.0, 150.0, 150.0), 2);
        assert_eq!(fs.cell_of(&Point::new(60.0, 60.0)), 0);
        assert_eq!(fs.cell_of(&Point::new(140.0, 140.0)), 3);
    }
}
