//! Property-based tests for the SSTA substrate: canonical-form statistics
//! against Monte-Carlo ground truth under random benchmarks.

use effitest_circuit::{BenchmarkSpec, GeneratedBenchmark};
use effitest_linalg::stats;
use effitest_ssta::{TimingModel, VariationConfig};
use proptest::prelude::*;

fn model_strategy() -> impl Strategy<Value = (TimingModel, u64)> {
    (10..28_usize, 0..200_u64).prop_map(|(scale, seed)| {
        let spec = BenchmarkSpec::iscas89_s13207().scaled_down(scale);
        let bench = GeneratedBenchmark::generate(&spec, seed);
        (TimingModel::build(&bench, &VariationConfig::paper()), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn covariance_matrices_are_psd((model, _seed) in model_strategy()) {
        let n = model.path_count().min(12);
        let idx: Vec<usize> = (0..n).collect();
        let cov = model.covariance_matrix(&idx);
        prop_assert!(cov.is_symmetric(1e-9));
        // PSD check via regularized Cholesky (tiny jitter tolerated).
        let chol = effitest_linalg::CholeskyDecomposition::new_regularized(&cov);
        prop_assert!(chol.is_ok(), "covariance not PSD: {:?}", chol.err());
    }

    #[test]
    fn empirical_correlations_match_model((model, seed) in model_strategy()) {
        prop_assume!(model.path_count() >= 2);
        let n = 400;
        let chips: Vec<_> = (0..n).map(|k| model.sample_chip(seed * 7919 + k)).collect();
        {
            let (i, j) = (0_usize, 1_usize);
            let a: Vec<f64> = chips.iter().map(|c| c.setup_delay(i)).collect();
            let b: Vec<f64> = chips.iter().map(|c| c.setup_delay(j)).collect();
            let emp = stats::correlation(&a, &b);
            let exact = model.correlation(i, j);
            prop_assert!(
                (emp - exact).abs() < 0.15,
                "path ({i},{j}): empirical {emp:.3} vs model {exact:.3}"
            );
        }
    }

    #[test]
    fn hold_bounds_always_below_setup_delays((model, seed) in model_strategy()) {
        let chip = model.sample_chip(seed ^ 0xFEED);
        for p in 0..model.path_count() {
            if let Some(h) = chip.hold_bound(p) {
                // underline(d) = hold - d_min must sit far under D = d + s.
                prop_assert!(h < chip.setup_delay(p));
            }
        }
    }

    #[test]
    fn inflation_is_exact_on_sigmas_and_covariances((model, _seed) in model_strategy()) {
        let inflated = model.with_inflated_sigma(1.1);
        let n = model.path_count().min(6);
        for i in 0..n {
            prop_assert!((inflated.path_sigma(i) / model.path_sigma(i) - 1.1).abs() < 1e-9);
            for j in 0..n {
                if i != j {
                    prop_assert!(
                        (inflated.covariance(i, j) - model.covariance(i, j)).abs() < 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn buffer_spec_follows_nominal_period((model, _seed) in model_strategy()) {
        let spec = model.buffer_spec();
        prop_assert!((spec.width() - model.nominal_period() / 8.0).abs() < 1e-9);
        prop_assert_eq!(spec.steps(), 20);
        prop_assert!((spec.min() + spec.max()).abs() < 1e-9, "range must be centered");
    }
}
