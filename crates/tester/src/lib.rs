//! Virtual tester substrate for the EffiTest reproduction.
//!
//! The paper's delay measurements run on automatic test equipment that can
//! apply an arbitrary clock period to a chip, scan in test vectors and
//! tuning-buffer configuration bits, and observe per-flip-flop pass/fail.
//! This crate simulates that equipment against frozen Monte-Carlo
//! [`ChipInstance`]s:
//!
//! * [`VirtualTester`] — applies `(period, shift)` probes and reports
//!   pass/fail per path while counting *frequency-stepping iterations*,
//!   the paper's central cost metric (`t_a`, `t_v` in Table 1), plus scan
//!   loads.
//! * [`DelayBounds`] — the `[l_ij, u_ij]` interval a path's delay is known
//!   to lie in, with the paper's update rule: a pass at period `T` with
//!   shift `x_i - x_j` proves `D_ij <= T - (x_i - x_j)`; a fail proves the
//!   opposite bound.
//! * [`path_wise_binary_search`] — the baseline the paper compares against
//!   (refs. [2, 6, 8, 9] therein): per-path frequency stepping, one path
//!   at a time, buffers untouched.
//! * [`TesterModel`] — hostile-silicon measurement error: deterministic
//!   quantization plus seeded Gaussian noise, hashed per
//!   `(chip, path, probe)` so every noisy measurement is bitwise
//!   reproducible at any thread count. [`ContradictionPolicy::Widen`]
//!   lets bounds updates absorb the contradictions noise produces instead
//!   of asserting.
//! * [`chip_passes`] — the final pass/fail test after buffer configuration
//!   (setup at the designated period plus hold).
//!
//! # Example
//!
//! ```
//! use effitest_circuit::{BenchmarkSpec, GeneratedBenchmark};
//! use effitest_ssta::{TimingModel, VariationConfig};
//! use effitest_tester::{path_wise_binary_search, DelayBounds, VirtualTester};
//!
//! let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(20), 1);
//! let model = TimingModel::build(&bench, &VariationConfig::paper());
//! let chip = model.sample_chip(0);
//! let mut tester = VirtualTester::new(&chip);
//! let mut bounds = DelayBounds::from_gaussian(model.path_mean(0), model.path_sigma(0), 3.0);
//! let eps = bounds.width() / 250.0;
//! path_wise_binary_search(&mut tester, 0, &mut bounds, eps);
//! assert!(bounds.width() <= eps);
//! assert_eq!(tester.iterations(), 8); // ceil(log2(250)) halvings
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use effitest_ssta::{hash_normal, mix_stream, ChipInstance};

/// What one frequency-stepping observation did to a [`DelayBounds`]
/// interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// The observation moved one of the bounds inward.
    Tightened,
    /// The observation lies outside the interval on the side it cannot
    /// tighten; the interval is unchanged.
    Uninformative,
    /// The observation contradicts the *opposite* bound: a pass below
    /// `lower` or a fail above `upper`. The interval saturates to zero
    /// width at the contradicted endpoint (see [`DelayBounds::update`]).
    Contradictory,
    /// Under [`ContradictionPolicy::Widen`] only: the observation
    /// contradicted a *proven* bound, which a noisy tester can legitimately
    /// produce, and the interval was conservatively re-opened to cover the
    /// measured value (see
    /// [`DelayBounds::update_with_policy`]).
    Widened,
}

/// How [`DelayBounds::update_with_policy`] treats an observation that
/// contradicts a bound *proven* by an earlier observation.
///
/// With an ideal tester such a contradiction is physically impossible for
/// frozen silicon — it indicates a caller bug, so [`Strict`](Self::Strict)
/// (the [`DelayBounds::update`] behavior) fires a debug assertion. A noisy
/// or quantizing [`TesterModel`] produces them legitimately;
/// [`Widen`](Self::Widen) absorbs them conservatively instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContradictionPolicy {
    /// Contradicting a proven bound fires a debug assertion (and saturates
    /// in release builds). The historical and default behavior.
    #[default]
    Strict,
    /// Contradicting a proven bound conservatively **re-opens** the
    /// interval to cover the measured value: the contradicted bound moves
    /// to the measurement and loses its proven status. A pass below a
    /// proven `lower` drops `lower`; a fail above a proven `upper` raises
    /// `upper`. Either way the interval still contains every delay any
    /// observation so far is consistent with, and the setup-critical
    /// `upper` never silently shrinks.
    Widen,
}

/// A delay interval `[lower, upper]` being narrowed by frequency stepping.
///
/// The initial bounds (from [`new`](Self::new) or
/// [`from_gaussian`](Self::from_gaussian)) are *assumed*: the paper
/// initializes at `mu ± 3 sigma` without any silicon evidence. Each call to
/// [`update`](Self::update) that tightens a bound marks that side *proven*
/// — backed by an actual pass/fail observation. The distinction matters
/// for contradiction handling: see [`update`](Self::update).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBounds {
    /// Lower bound `l_ij` (assumed until a fail proves it).
    pub lower: f64,
    /// Upper bound `u_ij` (assumed until a pass proves it).
    pub upper: f64,
    /// `true` once a fail observation established `lower`.
    lower_proven: bool,
    /// `true` once a pass observation established `upper`.
    upper_proven: bool,
}

impl DelayBounds {
    /// Creates bounds from explicit endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`.
    pub fn new(lower: f64, upper: f64) -> Self {
        assert!(lower <= upper, "inverted delay bounds");
        DelayBounds { lower, upper, lower_proven: false, upper_proven: false }
    }

    /// The paper's initialization: `mu +- k sigma` (k = 3 in §3.3).
    pub fn from_gaussian(mu: f64, sigma: f64, k: f64) -> Self {
        DelayBounds::new(mu - k * sigma, mu + k * sigma)
    }

    /// `true` once a fail observation has established the lower bound.
    pub fn lower_proven(&self) -> bool {
        self.lower_proven
    }

    /// `true` once a pass observation has established the upper bound.
    pub fn upper_proven(&self) -> bool {
        self.upper_proven
    }

    /// Interval midpoint (the "center" the alignment step targets).
    pub fn center(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// `true` once the interval is at most `epsilon` wide.
    pub fn converged(&self, epsilon: f64) -> bool {
        self.width() <= epsilon
    }

    /// Applies one frequency-stepping observation: the tester ran period
    /// `period` with buffer shift `shift = x_i - x_j` on this path.
    ///
    /// Pass (`passed == true`) proves `D <= period - shift`, tightening the
    /// upper bound; fail proves `D > period - shift`, raising the lower
    /// bound (paper Procedure 2, lines 8–12). The return value reports what
    /// the observation did — see [`Observation`].
    ///
    /// # Contradictions
    ///
    /// A pass below `lower` or a fail above `upper` contradicts the
    /// opposite bound. The interval **saturates** to zero width at the
    /// contradicted endpoint (`[lower, lower]` respectively
    /// `[upper, upper]`) instead of inverting, and the call returns
    /// [`Observation::Contradictory`] so callers can count or reject the
    /// chip. Against the initial *assumed* `mu ± k sigma` window this is
    /// the paper's accepted out-of-model inaccuracy (a chip beyond
    /// 3 sigma converges to the window boundary). Against a bound that was
    /// *proven* by an earlier observation it is physically impossible for a
    /// chip with frozen delays — it indicates an inconsistent tester or
    /// caller bug, and fires a debug assertion. A nominal contradiction of
    /// a *proven* bound within a relative slack of ~1e-9 is treated as
    /// rounding noise and reported [`Observation::Uninformative`] with the
    /// interval untouched: the tester evaluates `D + shift <= period`
    /// while this method reconstructs `period - shift`, and the two
    /// roundings can disagree by a few ulps on a perfectly consistent
    /// chip.
    #[must_use = "check for Observation::Contradictory — in release builds a contradiction \
                  saturates the interval silently otherwise"]
    pub fn update(&mut self, period: f64, shift: f64, passed: bool) -> Observation {
        self.update_with_policy(period, shift, passed, ContradictionPolicy::Strict)
    }

    /// [`update`](Self::update) with an explicit [`ContradictionPolicy`]
    /// for observations that contradict a *proven* bound.
    ///
    /// `Strict` is exactly [`update`](Self::update). `Widen` never
    /// asserts: a contradiction of a proven bound re-opens the interval to
    /// cover the measurement (the contradicted bound moves to the measured
    /// value and loses its proven status) and returns
    /// [`Observation::Widened`]. Contradictions of *assumed* bounds
    /// saturate identically under both policies — that is the paper's
    /// accepted out-of-model behavior, and keeping it bounds convergence.
    #[must_use = "check for Observation::Contradictory / Observation::Widened — callers must \
                  count hostile observations"]
    pub fn update_with_policy(
        &mut self,
        period: f64,
        shift: f64,
        passed: bool,
        policy: ContradictionPolicy,
    ) -> Observation {
        // Tolerance against a *proven* bound only (never for the interval
        // arithmetic itself): rounding noise between the tester's
        // `D + shift <= period` and our `period - shift` stays many orders
        // of magnitude below this.
        let slack = self.lower.abs().max(self.upper.abs()).max(1.0) * 1e-9;
        let measured = period - shift;
        if passed {
            if measured < self.lower {
                if self.lower_proven && measured > self.lower - slack {
                    // Rounding noise against a proven bound: no information.
                    return Observation::Uninformative;
                }
                if self.lower_proven && policy == ContradictionPolicy::Widen {
                    // Noisy pass below a proven lower bound: re-open the
                    // bottom of the interval to cover the measurement. The
                    // setup-critical upper bound is untouched.
                    self.lower = measured;
                    self.lower_proven = false;
                    return Observation::Widened;
                }
                debug_assert!(
                    !self.lower_proven,
                    "contradictory pass: proves delay <= {measured}, but an earlier fail \
                     proved delay > {}",
                    self.lower
                );
                self.upper = self.lower;
                Observation::Contradictory
            } else if measured < self.upper {
                self.upper = measured;
                self.upper_proven = true;
                Observation::Tightened
            } else {
                Observation::Uninformative
            }
        } else if measured > self.upper {
            if self.upper_proven && measured < self.upper + slack {
                return Observation::Uninformative;
            }
            if self.upper_proven && policy == ContradictionPolicy::Widen {
                // Noisy fail above a proven upper bound: raise the upper
                // bound to the measurement. Conservative for setup — the
                // delay estimate only grows.
                self.upper = measured;
                self.upper_proven = false;
                return Observation::Widened;
            }
            debug_assert!(
                !self.upper_proven,
                "contradictory fail: proves delay > {measured}, but an earlier pass \
                 proved delay <= {}",
                self.upper
            );
            self.lower = self.upper;
            Observation::Contradictory
        } else if measured > self.lower {
            self.lower = measured;
            self.lower_proven = true;
            Observation::Tightened
        } else {
            Observation::Uninformative
        }
    }
}

/// A deterministic model of tester imperfection: quantization plus seeded
/// Gaussian measurement noise.
///
/// An ideal tester compares the chip's frozen delay directly:
/// `D + shift <= period`. A real tester observes `D` through a noisy,
/// quantized measurement chain. This model perturbs the *observed* delay
/// per probe:
///
/// 1. add `noise_sigma * g`, where `g` is a standard-normal draw hashed
///    statelessly from `(noise_seed, chip die id, path, probe index)`;
/// 2. round the result to the nearest multiple of `quantization_lsb`.
///
/// The probe index is the count of noisy probes this tester has applied to
/// that path on that chip, so repeated probes see fresh noise — but the
/// whole stream is a pure function of the identifying tuple, making every
/// noisy measurement **bitwise reproducible at any thread count** (the
/// same per-chip/per-path sequence no matter which worker runs the chip or
/// in which order chips are tested). Both perturbations are skipped
/// entirely when their parameter is zero; [`TesterModel::ideal`] is
/// guaranteed bit-identical to the historical noise-free tester.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TesterModel {
    /// Standard deviation of the additive Gaussian measurement noise, in
    /// delay units. Zero disables noise.
    pub noise_sigma: f64,
    /// Least significant bit of the measurement chain: observed delays are
    /// rounded to the nearest multiple. Zero disables quantization.
    pub quantization_lsb: f64,
    /// Seed of the noise stream (combined with chip die id, path and probe
    /// index).
    pub noise_seed: u64,
}

impl Default for TesterModel {
    fn default() -> Self {
        TesterModel::ideal()
    }
}

impl TesterModel {
    /// The perfect tester: no noise, no quantization.
    pub fn ideal() -> Self {
        TesterModel { noise_sigma: 0.0, quantization_lsb: 0.0, noise_seed: 0 }
    }

    /// `true` when this model never perturbs a measurement.
    pub fn is_ideal(&self) -> bool {
        self.noise_sigma == 0.0 && self.quantization_lsb == 0.0
    }

    /// The contradiction policy a bounds-update loop should use with this
    /// tester: [`Widen`](ContradictionPolicy::Widen) as soon as any
    /// perturbation is enabled, [`Strict`](ContradictionPolicy::Strict)
    /// otherwise.
    pub fn policy(&self) -> ContradictionPolicy {
        if self.is_ideal() {
            ContradictionPolicy::Strict
        } else {
            ContradictionPolicy::Widen
        }
    }

    /// The delay the tester *observes* for probe number `probe_index` of
    /// `path` on the chip with die id `chip_seed`, given the frozen true
    /// delay.
    pub fn observed_delay(
        &self,
        chip_seed: u64,
        path: usize,
        probe_index: u64,
        true_delay: f64,
    ) -> f64 {
        let mut d = true_delay;
        if self.noise_sigma > 0.0 {
            let stream = mix_stream(
                mix_stream(mix_stream(self.noise_seed, chip_seed), path as u64),
                probe_index,
            );
            d += self.noise_sigma * hash_normal(stream);
        }
        if self.quantization_lsb > 0.0 {
            d = (d / self.quantization_lsb).round() * self.quantization_lsb;
        }
        d
    }
}

/// The virtual automatic test equipment.
///
/// Holds a chip under test and counts every frequency-stepping iteration
/// (one applied `(period, configuration)` probe) and every scan load. One
/// probe may test a whole batch of paths — that is exactly the
/// multiplexing advantage the paper exploits.
#[derive(Debug)]
pub struct VirtualTester<'a> {
    chip: &'a ChipInstance,
    model: TesterModel,
    /// Per-path count of noisy probes applied so far (empty for an ideal
    /// model — the noise stream needs it, the ideal fast path does not).
    probe_counts: Vec<u64>,
    iterations: u64,
    scan_loads: u64,
}

impl<'a> VirtualTester<'a> {
    /// Mounts a chip on an ideal tester.
    pub fn new(chip: &'a ChipInstance) -> Self {
        VirtualTester::with_model(chip, TesterModel::ideal())
    }

    /// Mounts a chip on a tester with the given measurement-error model.
    pub fn with_model(chip: &'a ChipInstance, model: TesterModel) -> Self {
        let probe_counts = if model.is_ideal() { Vec::new() } else { vec![0; chip.path_count()] };
        VirtualTester { chip, model, probe_counts, iterations: 0, scan_loads: 0 }
    }

    /// The chip under test.
    pub fn chip(&self) -> &ChipInstance {
        self.chip
    }

    /// The tester's measurement-error model.
    pub fn model(&self) -> TesterModel {
        self.model
    }

    /// Applies one clock period to a batch of paths, each with its buffer
    /// shift `x_i - x_j`, and reports pass/fail per path.
    ///
    /// Counts as **one** frequency-stepping iteration regardless of the
    /// batch size, plus one scan load for the configuration bits and test
    /// vectors.
    ///
    /// A path passes when its frozen effective delay satisfies the setup
    /// constraint (paper eq. 1): `D_ij + shift <= period`.
    ///
    /// # Panics
    ///
    /// Panics if any path index is out of range for the chip.
    pub fn apply_batch(&mut self, period: f64, probes: &[(usize, f64)]) -> Vec<bool> {
        let mut results = Vec::new();
        self.apply_batch_into(period, probes, &mut results);
        results
    }

    /// Allocation-free variant of [`apply_batch`](Self::apply_batch):
    /// `results` is cleared and refilled with one pass/fail per probe,
    /// reusing its capacity. This is the entry point of the aligned-test
    /// hot loop, which applies one probe batch per frequency-stepping
    /// iteration.
    ///
    /// # Panics
    ///
    /// Panics if any path index is out of range for the chip.
    pub fn apply_batch_into(
        &mut self,
        period: f64,
        probes: &[(usize, f64)],
        results: &mut Vec<bool>,
    ) {
        self.iterations += 1;
        self.scan_loads += 1;
        results.clear();
        if self.model.is_ideal() {
            // Bit-identical to the historical noise-free tester: no extra
            // arithmetic on this path.
            results.extend(
                probes.iter().map(|&(idx, shift)| self.chip.setup_delay(idx) + shift <= period),
            );
            return;
        }
        for &(idx, shift) in probes {
            let k = self.probe_counts[idx];
            self.probe_counts[idx] += 1;
            let observed =
                self.model.observed_delay(self.chip.seed(), idx, k, self.chip.setup_delay(idx));
            results.push(observed + shift <= period);
        }
    }

    /// Applies one clock period to a single path (the path-wise baseline).
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range.
    pub fn apply_single(&mut self, period: f64, path: usize, shift: f64) -> bool {
        self.apply_batch(period, &[(path, shift)])[0]
    }

    /// Total frequency-stepping iterations so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Total scan loads so far.
    pub fn scan_loads(&self) -> u64 {
        self.scan_loads
    }

    /// Resets the cost counters (e.g. between experiment phases). The
    /// noise stream's probe counts are **not** reset: they identify
    /// physical probes, not accounting periods.
    pub fn reset_counters(&mut self) {
        self.iterations = 0;
        self.scan_loads = 0;
    }
}

/// A whole population of chips mounted at once, in a structure-of-arrays
/// layout: path `p`'s setup delay on every chip lives contiguously at
/// `[p * n_chips, (p + 1) * n_chips)`.
///
/// This is the tester-side counterpart of the batched prediction engine:
/// where [`VirtualTester::apply_batch_into`] answers one probe batch for
/// one chip, [`ChipBank::apply_batch_into`] answers it for **every chip in
/// one pass over the path-major rows** — the same `D + shift <= period`
/// comparison, chip by chip, so each chip's column of the result is
/// identical to what its own [`VirtualTester`] would report.
///
/// Counting semantics follow the physical setup the batch models: all
/// chips share the applied frequency step, so one call costs **one**
/// iteration and one scan load for the whole bank (per-chip accounting
/// stays with [`VirtualTester`]).
#[derive(Debug, Clone)]
pub struct ChipBank {
    /// Paths per chip.
    n_paths: usize,
    /// Chips in the bank.
    n_chips: usize,
    /// Setup delays, path-major (`n_paths x n_chips`, row-major).
    delays: Vec<f64>,
    /// Die ids, bank order (noise-stream identity per chip).
    seeds: Vec<u64>,
    /// Measurement-error model shared by the bank's probes.
    model: TesterModel,
    /// Per-(path, chip) noisy-probe counts, same layout as `delays`
    /// (empty for an ideal model).
    probe_counts: Vec<u64>,
    iterations: u64,
    scan_loads: u64,
}

impl ChipBank {
    /// Gathers a population of chips into the SoA layout, measured by an
    /// ideal tester.
    ///
    /// # Panics
    ///
    /// Panics if the chips disagree on their path count.
    pub fn gather(chips: &[ChipInstance]) -> Self {
        ChipBank::gather_with_model(chips, TesterModel::ideal())
    }

    /// Gathers a population of chips, measured through the given
    /// measurement-error model. Each chip's noise stream is keyed by its
    /// die id and a per-(path, chip) probe count, so chip `c`'s column of
    /// every result stays bitwise equal to what that chip's own
    /// [`VirtualTester::with_model`] would report for the same probe
    /// sequence.
    ///
    /// # Panics
    ///
    /// Panics if the chips disagree on their path count.
    pub fn gather_with_model(chips: &[ChipInstance], model: TesterModel) -> Self {
        let n_chips = chips.len();
        let n_paths = chips.first().map_or(0, ChipInstance::path_count);
        let mut delays = vec![0.0; n_paths * n_chips];
        for (c, chip) in chips.iter().enumerate() {
            assert_eq!(chip.path_count(), n_paths, "chips disagree on path count");
            for p in 0..n_paths {
                delays[p * n_chips + c] = chip.setup_delay(p);
            }
        }
        let seeds = chips.iter().map(ChipInstance::seed).collect();
        let probe_counts = if model.is_ideal() { Vec::new() } else { vec![0; n_paths * n_chips] };
        ChipBank {
            n_paths,
            n_chips,
            delays,
            seeds,
            model,
            probe_counts,
            iterations: 0,
            scan_loads: 0,
        }
    }

    /// The bank's measurement-error model.
    pub fn model(&self) -> TesterModel {
        self.model
    }

    /// Chips in the bank.
    pub fn n_chips(&self) -> usize {
        self.n_chips
    }

    /// Paths per chip.
    pub fn path_count(&self) -> usize {
        self.n_paths
    }

    /// Applies one clock period to a batch of paths **on every chip**:
    /// `results` is cleared and refilled with the `n_probes x n_chips`
    /// row-major pass/fail matrix (probe `i`'s row holds every chip's
    /// answer, in bank order).
    ///
    /// Chip `c`'s column equals, entry for entry, what that chip's own
    /// [`VirtualTester::apply_batch_into`] returns for the same probes:
    /// the comparison is the identical IEEE `D + shift <= period`.
    ///
    /// # Panics
    ///
    /// Panics if any path index is out of range.
    pub fn apply_batch_into(
        &mut self,
        period: f64,
        probes: &[(usize, f64)],
        results: &mut Vec<bool>,
    ) {
        self.iterations += 1;
        self.scan_loads += 1;
        results.clear();
        results.reserve(probes.len() * self.n_chips);
        for &(idx, shift) in probes {
            assert!(idx < self.n_paths, "path index {idx} out of range ({} paths)", self.n_paths);
            let row = &self.delays[idx * self.n_chips..(idx + 1) * self.n_chips];
            if self.model.is_ideal() {
                results.extend(row.iter().map(|&d| d + shift <= period));
                continue;
            }
            for (c, &d) in row.iter().enumerate() {
                let slot = idx * self.n_chips + c;
                let k = self.probe_counts[slot];
                self.probe_counts[slot] += 1;
                let observed = self.model.observed_delay(self.seeds[c], idx, k, d);
                results.push(observed + shift <= period);
            }
        }
    }

    /// Allocating convenience form of
    /// [`apply_batch_into`](Self::apply_batch_into).
    ///
    /// # Panics
    ///
    /// Panics if any path index is out of range.
    pub fn apply_batch(&mut self, period: f64, probes: &[(usize, f64)]) -> Vec<bool> {
        let mut results = Vec::new();
        self.apply_batch_into(period, probes, &mut results);
        results
    }

    /// Total frequency-stepping iterations so far (one per applied batch,
    /// shared by the whole bank).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Total scan loads so far.
    pub fn scan_loads(&self) -> u64 {
        self.scan_loads
    }

    /// Resets the counters (e.g. between experiment phases).
    pub fn reset_counters(&mut self) {
        self.iterations = 0;
        self.scan_loads = 0;
    }
}

/// Consecutive non-shrinking probes a binary search tolerates before
/// giving up on a path (noisy testers can widen or stall; an ideal tester
/// can stall only on a floating-point-degenerate interval).
const MAX_STALLED_PROBES: u32 = 32;

/// Total probe budget per path for the binary search: a hard backstop
/// against tighten/widen oscillation under adversarial noise. Halving
/// across the entire f64 exponent range takes ~2100 probes, so the clean
/// path never comes close.
const MAX_PROBES_PER_PATH: u64 = 8192;

/// The baseline: narrow one path's bounds by binary search on the clock
/// period with all buffers at zero. Returns the iterations consumed.
///
/// This is the per-path frequency stepping of the paper's comparison
/// methods [2, 6, 8, 9]: `t'_v = ceil(log2(width / epsilon))` iterations
/// per path.
///
/// With an ideal tester every interior probe tightens and the count is
/// exact. With a noisy [`TesterModel`] the loop runs under
/// [`ContradictionPolicy::Widen`]: contradictory observations re-open the
/// interval instead of asserting, and the search gives up — leaving the
/// current (conservative) interval in place — after
/// [`MAX_STALLED_PROBES`] consecutive probes without a width reduction or
/// [`MAX_PROBES_PER_PATH`] probes in total.
pub fn path_wise_binary_search(
    tester: &mut VirtualTester<'_>,
    path: usize,
    bounds: &mut DelayBounds,
    epsilon: f64,
) -> u64 {
    let policy = tester.model().policy();
    let start = tester.iterations();
    let mut stalled = 0_u32;
    while !bounds.converged(epsilon) {
        if tester.iterations() - start >= MAX_PROBES_PER_PATH {
            break;
        }
        let period = bounds.center();
        let passed = tester.apply_single(period, path, 0.0);
        let before = bounds.width();
        let obs = bounds.update_with_policy(period, 0.0, passed, policy);
        if obs == Observation::Tightened && bounds.width() < before {
            stalled = 0;
        } else {
            // An interior probe that failed to shrink the interval: a
            // widening or saturating contradiction under noise, or an
            // uninformative probe on an interval too narrow for its center
            // to be strictly interior. None make progress, so budget them
            // to guarantee termination.
            stalled += 1;
            if stalled >= MAX_STALLED_PROBES {
                break;
            }
        }
    }
    tester.iterations() - start
}

/// The final pass/fail test after buffer configuration (paper Fig. 4,
/// bottom): the chip must meet setup at the designated period and hold,
/// given the per-path buffer shifts `x_i - x_j`.
///
/// # Panics
///
/// Panics if `shifts.len()` differs from the chip's path count.
pub fn chip_passes(chip: &ChipInstance, period: f64, shifts: &[f64]) -> bool {
    assert_eq!(shifts.len(), chip.path_count(), "one shift per path required");
    for (idx, &shift) in shifts.iter().enumerate() {
        if chip.setup_delay(idx) + shift > period {
            return false;
        }
        if let Some(hold_bound) = chip.hold_bound(idx) {
            if shift < hold_bound {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip(delays: &[f64]) -> ChipInstance {
        ChipInstance::new(0, delays.to_vec(), vec![None; delays.len()])
    }

    #[test]
    fn bounds_update_rules() {
        let mut b = DelayBounds::new(0.0, 10.0);
        // Pass at T=6, shift 0: delay <= 6.
        assert_eq!(b.update(6.0, 0.0, true), Observation::Tightened);
        assert_eq!(b.upper, 6.0);
        // Fail at T=3: delay > 3.
        assert_eq!(b.update(3.0, 0.0, false), Observation::Tightened);
        assert_eq!(b.lower, 3.0);
        // Shifted probe: pass at T=7 with shift +2 proves delay <= 5.
        assert_eq!(b.update(7.0, 2.0, true), Observation::Tightened);
        assert_eq!(b.upper, 5.0);
        // Uninformative observations are clamped.
        assert_eq!(b.update(100.0, 0.0, true), Observation::Uninformative);
        assert_eq!(b.upper, 5.0);
        assert_eq!(b.update(-100.0, 0.0, false), Observation::Uninformative);
        assert_eq!(b.lower, 3.0);
    }

    #[test]
    fn bounds_never_invert() {
        let mut b = DelayBounds::new(4.0, 6.0);
        // A fail above the *assumed* upper bound saturates to upper and is
        // reported as contradictory (documented saturating behavior).
        assert_eq!(b.update(100.0, 0.0, false), Observation::Contradictory);
        assert!(b.lower <= b.upper);
        assert_eq!(b.lower, 6.0);
        assert_eq!(b.width(), 0.0);
        let mut b2 = DelayBounds::new(4.0, 6.0);
        assert_eq!(b2.update(-50.0, 0.0, true), Observation::Contradictory);
        assert!(b2.lower <= b2.upper);
        assert_eq!(b2.upper, 4.0);
    }

    #[test]
    fn update_classifies_observations() {
        let mut b = DelayBounds::new(0.0, 10.0);
        assert!(!b.lower_proven() && !b.upper_proven());
        assert_eq!(b.update(6.0, 0.0, true), Observation::Tightened);
        assert!(b.upper_proven() && !b.lower_proven());
        assert_eq!(b.update(2.0, 0.0, false), Observation::Tightened);
        assert!(b.lower_proven());
        // Outside the interval on the uninformative side: no change.
        assert_eq!(b.update(9.0, 0.0, true), Observation::Uninformative);
        assert_eq!(b.update(1.0, 0.0, false), Observation::Uninformative);
        assert_eq!((b.lower, b.upper), (2.0, 6.0));
    }

    #[test]
    fn saturated_interval_stays_collapsed_and_consistent() {
        // After a contradiction saturates the interval, further
        // observations must keep it a valid zero-width point — no
        // inversion, no resurrection of the contradicted side.
        let mut b = DelayBounds::new(4.0, 6.0);
        assert_eq!(b.update(100.0, 0.0, false), Observation::Contradictory);
        assert_eq!((b.lower, b.upper), (6.0, 6.0));
        // Another fail above the collapsed point contradicts again...
        assert_eq!(b.update(50.0, 0.0, false), Observation::Contradictory);
        assert_eq!((b.lower, b.upper), (6.0, 6.0));
        assert_eq!(b.width(), 0.0);
        // ...while a pass at the point itself proves the (degenerate)
        // upper bound and is simply uninformative afterwards.
        assert_eq!(b.update(6.0, 0.0, true), Observation::Uninformative);
        assert!(b.lower <= b.upper);
        assert!(b.converged(0.0));
    }

    #[test]
    fn rounding_noise_against_a_proven_bound_is_uninformative() {
        // The tester evaluates `D + shift <= period` while the bounds
        // reconstruct `period - shift`; the two roundings can disagree by
        // a few ulps. Within the documented ~1e-9 relative slack a
        // nominal contradiction of a *proven* bound must be dismissed as
        // noise, leaving the interval untouched.
        let mut b = DelayBounds::new(0.0, 10.0);
        assert_eq!(b.update(6.0, 0.0, true), Observation::Tightened);
        assert!(b.upper_proven());
        // Fail "proving" delay > 6 + 1e-12: inside the slack band.
        assert_eq!(b.update(6.0 + 1e-12, 0.0, false), Observation::Uninformative);
        assert_eq!((b.lower, b.upper), (0.0, 6.0));
        // Same on the lower side.
        assert_eq!(b.update(2.0, 0.0, false), Observation::Tightened);
        assert!(b.lower_proven());
        assert_eq!(b.update(2.0 - 1e-12, 0.0, true), Observation::Uninformative);
        assert_eq!((b.lower, b.upper), (2.0, 6.0));
    }

    #[test]
    fn slack_scales_with_the_bound_magnitude() {
        // The tolerance is relative: at magnitude 1e6 an absolute 1e-5
        // disagreement is still rounding noise, while the same absolute
        // disagreement at magnitude 1 is a real contradiction (and fires
        // the debug assertion — exercised release-only here).
        let mut big = DelayBounds::new(0.0, 2.0e6);
        assert_eq!(big.update(1.0e6, 0.0, true), Observation::Tightened);
        assert_eq!(big.update(1.0e6 + 1e-5, 0.0, false), Observation::Uninformative);
        assert_eq!(big.upper, 1.0e6);
        if cfg!(not(debug_assertions)) {
            let mut small = DelayBounds::new(0.0, 2.0);
            assert_eq!(small.update(1.0, 0.0, true), Observation::Tightened);
            assert_eq!(small.update(1.0 + 1e-5, 0.0, false), Observation::Contradictory);
            assert_eq!((small.lower, small.upper), (1.0, 1.0));
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "contradictory fail")]
    fn contradicting_a_proven_upper_bound_asserts_in_debug() {
        let mut b = DelayBounds::new(0.0, 10.0);
        // A pass at 6 proves delay <= 6 ...
        assert_eq!(b.update(6.0, 0.0, true), Observation::Tightened);
        // ... so a fail at 8 (delay > 8) is impossible for a frozen chip.
        let _ = b.update(8.0, 0.0, false);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "contradictory pass")]
    fn contradicting_a_proven_lower_bound_asserts_in_debug() {
        let mut b = DelayBounds::new(0.0, 10.0);
        // A fail at 5 proves delay > 5 ...
        assert_eq!(b.update(5.0, 0.0, false), Observation::Tightened);
        // ... so a pass at 3 (delay <= 3) is impossible for a frozen chip.
        let _ = b.update(3.0, 0.0, true);
    }

    #[test]
    fn widen_policy_reopens_a_proven_lower_bound() {
        let mut b = DelayBounds::new(0.0, 10.0);
        // A fail at 5 proves delay > 5.
        assert_eq!(b.update(5.0, 0.0, false), Observation::Tightened);
        assert!(b.lower_proven());
        // A noisy pass at 3 contradicts it; Widen drops the lower bound to
        // the measurement and revokes its proven status.
        assert_eq!(
            b.update_with_policy(3.0, 0.0, true, ContradictionPolicy::Widen),
            Observation::Widened
        );
        assert_eq!((b.lower, b.upper), (3.0, 10.0));
        assert!(!b.lower_proven());
        // The re-opened side can be proven again afterwards.
        assert_eq!(b.update(4.0, 0.0, false), Observation::Tightened);
        assert!(b.lower_proven());
    }

    #[test]
    fn widen_policy_reopens_a_proven_upper_bound() {
        let mut b = DelayBounds::new(0.0, 10.0);
        // A pass at 6 proves delay <= 6.
        assert_eq!(b.update(6.0, 0.0, true), Observation::Tightened);
        assert!(b.upper_proven());
        // A noisy fail at 8 contradicts it; Widen raises the upper bound —
        // the delay estimate only ever grows, which is setup-conservative.
        assert_eq!(
            b.update_with_policy(8.0, 0.0, false, ContradictionPolicy::Widen),
            Observation::Widened
        );
        assert_eq!((b.lower, b.upper), (0.0, 8.0));
        assert!(!b.upper_proven());
        assert!(b.lower <= b.upper);
    }

    #[test]
    fn widen_policy_still_saturates_assumed_bounds() {
        // Contradictions of *assumed* bounds are the paper's out-of-model
        // case and must behave identically under both policies.
        let mut strict = DelayBounds::new(4.0, 6.0);
        let mut widen = DelayBounds::new(4.0, 6.0);
        assert_eq!(strict.update(100.0, 0.0, false), Observation::Contradictory);
        assert_eq!(
            widen.update_with_policy(100.0, 0.0, false, ContradictionPolicy::Widen),
            Observation::Contradictory
        );
        assert_eq!((strict.lower, strict.upper), (widen.lower, widen.upper));
        assert_eq!(widen.width(), 0.0);
    }

    // The `#[should_panic]` twins above cover debug builds; this is the
    // `cfg(not(debug_assertions))`-safe counterpart pinning the *release*
    // behavior of `update` on a proven-bound contradiction: silent
    // saturation to zero width at the contradicted endpoint, reported
    // `Contradictory`.
    #[cfg(not(debug_assertions))]
    #[test]
    fn proven_bound_contradiction_saturates_in_release() {
        let mut b = DelayBounds::new(0.0, 10.0);
        assert_eq!(b.update(6.0, 0.0, true), Observation::Tightened);
        // Fail at 8 contradicts the proven upper bound: saturate [6, 6].
        assert_eq!(b.update(8.0, 0.0, false), Observation::Contradictory);
        assert_eq!((b.lower, b.upper), (6.0, 6.0));
        assert_eq!(b.width(), 0.0);
        let mut b2 = DelayBounds::new(0.0, 10.0);
        assert_eq!(b2.update(5.0, 0.0, false), Observation::Tightened);
        // Pass at 3 contradicts the proven lower bound: saturate [5, 5].
        assert_eq!(b2.update(3.0, 0.0, true), Observation::Contradictory);
        assert_eq!((b2.lower, b2.upper), (5.0, 5.0));
        assert!(b2.converged(0.0));
    }

    #[test]
    fn tester_model_noise_is_reproducible_and_per_probe() {
        let m = TesterModel { noise_sigma: 0.1, quantization_lsb: 0.0, noise_seed: 7 };
        let a = m.observed_delay(3, 5, 0, 10.0);
        assert_eq!(a, m.observed_delay(3, 5, 0, 10.0));
        // Fresh noise per probe index, per path, per chip, per seed.
        assert_ne!(a, m.observed_delay(3, 5, 1, 10.0));
        assert_ne!(a, m.observed_delay(3, 6, 0, 10.0));
        assert_ne!(a, m.observed_delay(4, 5, 0, 10.0));
        let m2 = TesterModel { noise_seed: 8, ..m };
        assert_ne!(a, m2.observed_delay(3, 5, 0, 10.0));
    }

    #[test]
    fn tester_model_quantizes_to_the_lsb() {
        let m = TesterModel { noise_sigma: 0.0, quantization_lsb: 0.25, noise_seed: 0 };
        assert_eq!(m.observed_delay(0, 0, 0, 10.06), 10.0);
        assert_eq!(m.observed_delay(0, 0, 0, 10.13), 10.25);
        assert!(!m.is_ideal());
        assert_eq!(m.policy(), ContradictionPolicy::Widen);
        assert!(TesterModel::ideal().is_ideal());
        assert_eq!(TesterModel::ideal().policy(), ContradictionPolicy::Strict);
        assert_eq!(TesterModel::default(), TesterModel::ideal());
    }

    #[test]
    fn ideal_model_tester_matches_plain_tester_bitwise() {
        let c = chip(&[5.0, 7.0, 9.0]);
        let mut plain = VirtualTester::new(&c);
        let mut modeled = VirtualTester::with_model(&c, TesterModel::ideal());
        for period in [4.0, 6.5, 8.0, 10.0] {
            let probes = [(0, 0.5), (1, -0.25), (2, 0.0)];
            assert_eq!(plain.apply_batch(period, &probes), modeled.apply_batch(period, &probes));
        }
    }

    #[test]
    fn noisy_probes_redraw_noise_per_repeat() {
        // A delay sitting right at the period flips pass/fail under fresh
        // noise; with sigma far larger than the margin, 64 identical
        // probes virtually surely disagree at least once.
        let c = chip(&[5.0]);
        let m = TesterModel { noise_sigma: 1.0, quantization_lsb: 0.0, noise_seed: 3 };
        let mut t = VirtualTester::with_model(&c, m);
        let results: Vec<bool> = (0..64).map(|_| t.apply_single(5.0, 0, 0.0)).collect();
        assert!(results.iter().any(|&r| r) && results.iter().any(|&r| !r));
        // And the whole sequence is reproducible from scratch.
        let mut t2 = VirtualTester::with_model(&c, m);
        let again: Vec<bool> = (0..64).map(|_| t2.apply_single(5.0, 0, 0.0)).collect();
        assert_eq!(results, again);
    }

    #[test]
    fn noisy_bank_columns_match_per_chip_noisy_testers() {
        let n_paths = 6;
        let chips: Vec<ChipInstance> = (0..5)
            .map(|c| {
                let d = lcg_delays(2000 + c, n_paths);
                ChipInstance::new(c, d, vec![None; n_paths])
            })
            .collect();
        let m = TesterModel { noise_sigma: 0.2, quantization_lsb: 0.05, noise_seed: 11 };
        let mut bank = ChipBank::gather_with_model(&chips, m);
        assert_eq!(bank.model(), m);
        let mut testers: Vec<VirtualTester<'_>> =
            chips.iter().map(|c| VirtualTester::with_model(c, m)).collect();
        // Repeat paths inside and across batches: probe counts must stay
        // in lockstep between the bank and the solo testers.
        let batches =
            [vec![(0, 0.0), (3, 0.5), (0, 0.0)], vec![(3, -0.25), (5, 0.0)], vec![(0, 1.0)]];
        let mut bank_results = Vec::new();
        for (step, probes) in batches.iter().enumerate() {
            let period = 5.0 + step as f64;
            bank.apply_batch_into(period, probes, &mut bank_results);
            for (c, tester) in testers.iter_mut().enumerate() {
                let solo = tester.apply_batch(period, probes);
                for (i, &expect) in solo.iter().enumerate() {
                    assert_eq!(
                        bank_results[i * chips.len() + c],
                        expect,
                        "probe {i} chip {c} step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn noisy_binary_search_terminates_with_a_valid_interval() {
        let true_delay = 7.37;
        let c = chip(&[true_delay]);
        let m = TesterModel { noise_sigma: 0.5, quantization_lsb: 0.01, noise_seed: 21 };
        let mut t = VirtualTester::with_model(&c, m);
        let mut b = DelayBounds::new(0.0, 16.0);
        let iters = path_wise_binary_search(&mut t, 0, &mut b, 0.01);
        assert!(iters <= MAX_PROBES_PER_PATH);
        assert!(b.lower <= b.upper, "interval inverted: [{}, {}]", b.lower, b.upper);
        assert!(b.lower.is_finite() && b.upper.is_finite());
        // Deterministic rerun, bit for bit.
        let mut t2 = VirtualTester::with_model(&c, m);
        let mut b2 = DelayBounds::new(0.0, 16.0);
        let iters2 = path_wise_binary_search(&mut t2, 0, &mut b2, 0.01);
        assert_eq!((iters, b.lower, b.upper), (iters2, b2.lower, b2.upper));
    }

    #[test]
    fn degenerate_zero_epsilon_search_terminates() {
        // eps = 0 on an ideal tester: the interval narrows until its
        // center collides with an endpoint in floating point; the stall
        // guard must end the loop rather than hang.
        let c = chip(&[5.0]);
        let mut t = VirtualTester::new(&c);
        let mut b = DelayBounds::new(4.0, 6.0);
        let iters = path_wise_binary_search(&mut t, 0, &mut b, 0.0);
        assert!(iters < MAX_PROBES_PER_PATH);
        assert!(b.lower <= b.upper);
        assert!(b.width() <= 1e-12);
    }

    #[test]
    fn tester_types_are_send_and_sync_clean() {
        // The population engine shares chips across worker threads and
        // moves testers into them; keep these bounds load-bearing.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<ChipInstance>();
        assert_sync::<ChipInstance>();
        assert_send::<VirtualTester<'static>>();
        assert_sync::<VirtualTester<'static>>();
        assert_send::<DelayBounds>();
        assert_sync::<DelayBounds>();
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn new_rejects_inverted() {
        DelayBounds::new(2.0, 1.0);
    }

    #[test]
    fn from_gaussian_covers_three_sigma() {
        let b = DelayBounds::from_gaussian(100.0, 5.0, 3.0);
        assert_eq!(b.lower, 85.0);
        assert_eq!(b.upper, 115.0);
        assert_eq!(b.center(), 100.0);
        assert_eq!(b.width(), 30.0);
    }

    #[test]
    fn tester_counts_iterations_per_probe_not_per_path() {
        let c = chip(&[5.0, 7.0, 9.0]);
        let mut t = VirtualTester::new(&c);
        let r = t.apply_batch(8.0, &[(0, 0.0), (1, 0.0), (2, 0.0)]);
        assert_eq!(r, vec![true, true, false]);
        assert_eq!(t.iterations(), 1);
        assert_eq!(t.scan_loads(), 1);
        t.apply_single(6.0, 2, -4.0);
        assert_eq!(t.iterations(), 2);
        t.reset_counters();
        assert_eq!(t.iterations(), 0);
    }

    #[test]
    fn shifts_affect_pass_fail() {
        let c = chip(&[5.0]);
        let mut t = VirtualTester::new(&c);
        // D + shift <= T: 5 + 2 <= 6 is false, 5 - 2 <= 6 is true.
        assert!(!t.apply_single(6.0, 0, 2.0));
        assert!(t.apply_single(6.0, 0, -2.0));
    }

    #[test]
    fn binary_search_brackets_the_true_delay() {
        let true_delay = 7.37;
        let c = chip(&[true_delay]);
        let mut t = VirtualTester::new(&c);
        let mut b = DelayBounds::new(0.0, 16.0);
        let eps = 0.01;
        let iters = path_wise_binary_search(&mut t, 0, &mut b, eps);
        assert!(b.converged(eps));
        assert!(
            b.lower <= true_delay && true_delay <= b.upper + 1e-12,
            "bounds [{}, {}] miss {true_delay}",
            b.lower,
            b.upper
        );
        // log2(16 / 0.01) ~ 10.6 -> 11 iterations.
        assert_eq!(iters, 11);
    }

    #[test]
    fn binary_search_iteration_count_matches_log2() {
        let c = chip(&[5.0]);
        for k in [4_u32, 6, 8, 10] {
            let mut t = VirtualTester::new(&c);
            let mut b = DelayBounds::new(1.0, 9.0);
            let eps = 8.0 / (1u64 << k) as f64;
            let iters = path_wise_binary_search(&mut t, 0, &mut b, eps);
            assert_eq!(iters, k as u64, "width 8, eps 8/2^{k}");
        }
    }

    #[test]
    fn out_of_range_delay_converges_to_boundary() {
        // True delay above the initial upper bound: every probe fails and
        // the interval collapses at the top; the resulting "measured" value
        // underestimates the true delay (the paper's accepted inaccuracy).
        let c = chip(&[20.0]);
        let mut t = VirtualTester::new(&c);
        let mut b = DelayBounds::new(0.0, 10.0);
        path_wise_binary_search(&mut t, 0, &mut b, 0.1);
        assert!(b.upper <= 10.0 + 1e-12);
        assert!(b.width() <= 0.1);
        assert!(b.upper > 9.8);
    }

    #[test]
    fn chip_passes_checks_setup_and_hold() {
        let c = ChipInstance::new(0, vec![5.0, 7.0], vec![Some(-1.0), None]);
        // Setup OK at period 8 with zero shifts; hold bound -1 <= 0 OK.
        assert!(chip_passes(&c, 8.0, &[0.0, 0.0]));
        // Setup violation on path 1 at period 6.
        assert!(!chip_passes(&c, 6.0, &[0.0, 0.0]));
        // Path 1 rescued by negative shift.
        assert!(chip_passes(&c, 6.0, &[0.0, -1.5]));
        // Hold violation: shift on path 0 below its hold bound.
        assert!(!chip_passes(&c, 8.0, &[-1.5, 0.0]));
    }

    #[test]
    #[should_panic(expected = "one shift per path")]
    fn chip_passes_validates_lengths() {
        let c = chip(&[1.0]);
        chip_passes(&c, 2.0, &[]);
    }

    /// Deterministic pseudo-random delays so bank tests cover non-trivial
    /// floating-point values without depending on an RNG crate.
    fn lcg_delays(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                2.0 + (state >> 11) as f64 / (1u64 << 53) as f64 * 8.0
            })
            .collect()
    }

    #[test]
    fn bank_columns_match_per_chip_tester_exactly() {
        let n_paths = 9;
        let chips: Vec<ChipInstance> = (0..13)
            .map(|c| {
                let d = lcg_delays(1000 + c, n_paths);
                ChipInstance::new(c, d, vec![None; n_paths])
            })
            .collect();
        let mut bank = ChipBank::gather(&chips);
        assert_eq!(bank.n_chips(), 13);
        assert_eq!(bank.path_count(), n_paths);
        let probes = [(0, 0.0), (3, 0.75), (8, -1.25), (3, -0.5)];
        let mut bank_results = Vec::new();
        for (step, &period) in [7.5, 4.25, 6.03125].iter().enumerate() {
            bank.apply_batch_into(period, &probes, &mut bank_results);
            assert_eq!(bank_results.len(), probes.len() * chips.len());
            assert_eq!(bank.iterations(), step as u64 + 1);
            assert_eq!(bank.scan_loads(), step as u64 + 1);
            for (c, chip) in chips.iter().enumerate() {
                let mut tester = VirtualTester::new(chip);
                let solo = tester.apply_batch(period, &probes);
                for (i, &expect) in solo.iter().enumerate() {
                    assert_eq!(
                        bank_results[i * chips.len() + c],
                        expect,
                        "probe {i} chip {c} period {period}"
                    );
                }
            }
        }
    }

    #[test]
    fn bank_counts_one_iteration_per_batch() {
        let chips = vec![chip(&[1.0, 2.0]), chip(&[3.0, 4.0])];
        let mut bank = ChipBank::gather(&chips);
        let r = bank.apply_batch(5.0, &[(0, 0.0), (1, 0.0)]);
        assert_eq!(r, vec![true, true, true, true]);
        bank.apply_batch(0.5, &[(0, 0.0)]);
        assert_eq!(bank.iterations(), 2);
        assert_eq!(bank.scan_loads(), 2);
        bank.reset_counters();
        assert_eq!(bank.iterations(), 0);
        assert_eq!(bank.scan_loads(), 0);
    }

    #[test]
    fn bank_handles_empty_population_and_empty_probe_batches() {
        let mut empty = ChipBank::gather(&[]);
        assert_eq!(empty.n_chips(), 0);
        assert_eq!(empty.path_count(), 0);
        let mut results = vec![true; 3];
        empty.apply_batch_into(1.0, &[], &mut results);
        assert!(results.is_empty());
        let mut bank = ChipBank::gather(&[chip(&[1.0])]);
        assert!(bank.apply_batch(1.0, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_rejects_out_of_range_paths() {
        let mut bank = ChipBank::gather(&[chip(&[1.0, 2.0])]);
        bank.apply_batch(1.0, &[(2, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "disagree on path count")]
    fn bank_rejects_ragged_populations() {
        ChipBank::gather(&[chip(&[1.0]), chip(&[1.0, 2.0])]);
    }
}
