//! Property-based tests for the virtual tester: bound-bracketing and
//! iteration-count invariants of frequency stepping.

use effitest_ssta::ChipInstance;
use effitest_tester::{
    chip_passes, path_wise_binary_search, DelayBounds, Observation, VirtualTester,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary search always converges, never inverts bounds, and brackets
    /// the true delay whenever it started inside the window.
    #[test]
    fn binary_search_brackets_or_clamps(
        truth in 1.0_f64..99.0,
        center in 20.0_f64..80.0,
        half_width in 1.0_f64..40.0,
        eps_div in 4.0_f64..512.0,
    ) {
        let chip = ChipInstance::new(0, vec![truth], vec![None]);
        let mut tester = VirtualTester::new(&chip);
        let mut bounds = DelayBounds::new(center - half_width, center + half_width);
        let eps = bounds.width() / eps_div;
        let iters = path_wise_binary_search(&mut tester, 0, &mut bounds, eps);
        prop_assert!(bounds.lower <= bounds.upper);
        prop_assert!(bounds.converged(eps));
        // Iteration count = ceil(log2(width/eps)), within rounding slack.
        let expected = (eps_div.log2()).ceil() as u64;
        prop_assert!(iters <= expected + 1 && iters + 1 >= expected,
            "iters {iters} vs expected {expected}");
        if truth >= center - half_width && truth <= center + half_width {
            prop_assert!(
                bounds.lower - 1e-9 <= truth && truth <= bounds.upper + 1e-9,
                "bounds [{}, {}] miss in-window truth {truth}",
                bounds.lower,
                bounds.upper
            );
        }
    }

    /// Batch probes cost one iteration regardless of size and report
    /// pass/fail consistent with the setup rule `D + shift <= T`.
    #[test]
    fn batch_probe_semantics(
        delays in proptest::collection::vec(1.0_f64..50.0, 1..12),
        period in 1.0_f64..60.0,
        shift in -10.0_f64..10.0,
    ) {
        let chip = ChipInstance::new(1, delays.clone(), vec![None; delays.len()]);
        let mut tester = VirtualTester::new(&chip);
        let probes: Vec<(usize, f64)> = (0..delays.len()).map(|i| (i, shift)).collect();
        let results = tester.apply_batch(period, &probes);
        prop_assert_eq!(tester.iterations(), 1);
        for (i, &passed) in results.iter().enumerate() {
            prop_assert_eq!(passed, delays[i] + shift <= period);
        }
    }

    /// `chip_passes` agrees with per-path checks.
    #[test]
    fn chip_passes_is_conjunction(
        delays in proptest::collection::vec(1.0_f64..50.0, 1..8),
        holds in proptest::collection::vec(proptest::option::of(-20.0_f64..5.0), 8),
        period in 10.0_f64..70.0,
        shifts in proptest::collection::vec(-8.0_f64..8.0, 8),
    ) {
        let n = delays.len();
        let holds: Vec<Option<f64>> = holds[..n].to_vec();
        let chip = ChipInstance::new(2, delays.clone(), holds.clone());
        let shifts: Vec<f64> = shifts[..n].to_vec();
        let expected = (0..n).all(|i| {
            delays[i] + shifts[i] <= period
                && holds[i].is_none_or(|h| shifts[i] >= h)
        });
        prop_assert_eq!(chip_passes(&chip, period, &shifts), expected);
    }

    /// Bounds updates are monotone: widths never grow. Observations are
    /// generated from a frozen true delay (as a real chip produces them),
    /// so no probe sequence can contradict a previously proven bound.
    #[test]
    fn bounds_updates_never_widen(
        lo in 0.0_f64..50.0,
        width in 0.1_f64..50.0,
        truth in 0.0_f64..110.0,
        probes in proptest::collection::vec((0.0_f64..120.0, -10.0_f64..10.0), 1..20),
    ) {
        let mut b = DelayBounds::new(lo, lo + width);
        for &(t, shift) in &probes {
            let passed = truth + shift <= t;
            let before = b.width();
            let _ = b.update(t, shift, passed);
            prop_assert!(b.width() <= before + 1e-12);
            prop_assert!(b.lower <= b.upper);
        }
    }

    /// A contradictory observation (only possible against the *assumed*
    /// initial window: a chip whose true delay lies outside it) saturates
    /// the interval to zero width at the contradicted endpoint — it never
    /// inverts the bounds.
    #[test]
    fn contradictions_saturate_without_inverting(
        lo in 0.0_f64..50.0,
        width in 0.1_f64..50.0,
        margin in 0.001_f64..30.0,
        fail_side in proptest::bool::ANY,
    ) {
        let mut b = DelayBounds::new(lo, lo + width);
        let obs = if fail_side {
            // Fail above the assumed upper bound.
            b.update(lo + width + margin, 0.0, false)
        } else {
            // Pass below the assumed lower bound.
            b.update(lo - margin, 0.0, true)
        };
        prop_assert_eq!(obs, Observation::Contradictory);
        prop_assert!(b.lower <= b.upper);
        prop_assert_eq!(b.width(), 0.0);
        let endpoint = if fail_side { lo + width } else { lo };
        prop_assert_eq!(b.lower, endpoint);
    }
}
