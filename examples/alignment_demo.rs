//! ASCII visualization of delay-range alignment (the paper's Fig. 6).
//!
//! Shows one test batch over successive frequency-stepping iterations:
//! each path's current `[l, u]` range (shifted by its buffer assignment),
//! the chosen clock period `T`, and how one probe narrows several ranges
//! at once once the buffers align them.
//!
//! Run with: `cargo run --release --example alignment_demo`

use effitest::solver::align::{sorted_center_weights, AlignPath, AlignmentEngine, BufferVar};

const COLS: usize = 72;

fn render(label: &str, lo: f64, hi: f64, left: f64, right: f64, marker: Option<f64>) {
    let scale =
        |v: f64| (((v - lo) / (hi - lo)).clamp(0.0, 1.0) * (COLS - 1) as f64).round() as usize;
    let mut row = vec![b' '; COLS];
    let (a, b) = (scale(left), scale(right));
    for cell in row.iter_mut().take(b + 1).skip(a) {
        *cell = b'-';
    }
    row[a] = b'[';
    row[b] = b']';
    if let Some(m) = marker {
        let m = scale(m);
        row[m] = if row[m] == b' ' { b'|' } else { b'+' };
    }
    println!("  {label:<10} {}", String::from_utf8(row).expect("ascii"));
}

fn main() {
    // A hand-built batch in the spirit of Fig. 6d: three paths with
    // overlapping-but-offset ranges; two buffers can shift the outer two.
    let spec = BufferVar { min: -6.0, max: 6.0, steps: 20 };
    let buffers = vec![spec, spec];
    let mut bounds = [(88.0_f64, 118.0_f64), (97.0, 127.0), (106.0, 136.0)];
    // Path 0 launches from buffer 0 (shift = +x0), path 2 captures at
    // buffer 1 (shift = -x1), path 1 is unbuffered.
    let roles: [(Option<usize>, Option<usize>); 3] =
        [(Some(0), None), (None, None), (None, Some(1))];
    let truths = [101.5, 111.0, 122.0];

    println!("Delay-range alignment by tuning buffers (paper Fig. 6)\n");
    println!("true delays: {truths:?}\n");
    let (view_lo, view_hi) = (80.0, 145.0);

    // The per-iteration hot path of the real flow: one warm-started
    // engine per batch, the path list rebuilt in place each iteration.
    let mut engine = AlignmentEngine::new();
    engine.begin_batch(&buffers);

    let mut iteration = 0;
    while bounds.iter().any(|(l, u)| u - l > 0.8) && iteration < 12 {
        iteration += 1;
        let centers: Vec<f64> = bounds.iter().map(|(l, u)| 0.5 * (l + u)).collect();
        let weights = sorted_center_weights(&centers, 1000.0, 1.0);
        let paths = engine.paths_mut();
        paths.clear();
        paths.extend((0..3).map(|p| AlignPath {
            center: centers[p],
            weight: weights[p],
            source_buffer: roles[p].0,
            sink_buffer: roles[p].1,
            hold_lower_bound: None,
        }));
        let sol = engine.solve().clone();

        println!(
            "iteration {iteration}: T = {:.2}, buffers = [{:+.2}, {:+.2}]",
            sol.period, sol.buffer_values[0], sol.buffer_values[1]
        );
        for p in 0..3 {
            let shift = roles[p].0.map_or(0.0, |b| sol.buffer_values[b])
                - roles[p].1.map_or(0.0, |b| sol.buffer_values[b]);
            let (l, u) = bounds[p];
            // Ranges drawn in the *shifted* domain the tester sees.
            render(&format!("path {p}"), view_lo, view_hi, l + shift, u + shift, Some(sol.period));
            // Apply the probe: pass iff truth + shift <= T.
            let passed = truths[p] + shift <= sol.period;
            let measured = sol.period - shift;
            if passed {
                if measured < bounds[p].1 {
                    bounds[p].1 = measured.max(bounds[p].0);
                }
            } else if measured > bounds[p].0 {
                bounds[p].0 = measured.min(bounds[p].1);
            }
        }
        println!();
    }

    println!("final ranges after {iteration} frequency steps:");
    for (p, (l, u)) in bounds.iter().enumerate() {
        println!("  path {p}: [{l:7.2}, {u:7.2}]  width {:.2}  (true delay {})", u - l, truths[p]);
        assert!(*l - 1e-9 <= truths[p] && truths[p] <= *u + 1e-9, "range must bracket truth");
    }
    println!("\nEvery iteration probed all three paths with ONE clock period —");
    println!("that is the multiplexing + alignment advantage of the paper.");
}
