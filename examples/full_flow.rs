//! Full-scale end-to-end run on one paper benchmark with per-stage
//! reporting: grouping, selection, batching, hold bounds, per-chip aligned
//! test, prediction quality, configuration, and the final yield sample.
//!
//! Run with: `cargo run --release --example full_flow [circuit] [n_chips]`
//! (default: s9234, 40 chips).

use effitest::linalg::stats;
use effitest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(|s| s.as_str()).unwrap_or("s9234");
    let n_chips: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(40);
    let spec = BenchmarkSpec::all_paper_circuits()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown circuit `{name}`"));

    println!("=== EffiTest full flow: {} ===\n", spec.name);
    let bench = GeneratedBenchmark::generate(&spec, 1);
    let (ns, ng, nb, np) = bench.stats();
    println!("[circuit]   ns={ns} ng={ng} nb={nb} np={np}");

    let model = TimingModel::build(&bench, &VariationConfig::paper());
    println!(
        "[timing]    nominal period {:.1} ps, buffer range {} ({} steps of {:.2} ps)",
        model.nominal_period(),
        model.buffer_spec(),
        model.buffer_spec().steps(),
        model.buffer_spec().step_size()
    );

    let flow = EffiTestFlow::new(FlowConfig::default());
    let prepared = flow.plan(&bench, &model)?;
    println!(
        "[select]    {} groups; representatives per group: {:?}",
        prepared.groups.len(),
        prepared.groups.iter().map(|g| g.selected.len()).collect::<Vec<_>>()
    );
    println!(
        "[batch]     {} tested paths in {} batches (sizes {:?}; {} slot-filled)",
        prepared.tested_path_count(),
        prepared.batches.len(),
        prepared.batches.batches.iter().map(Vec::len).collect::<Vec<_>>(),
        prepared.batches.slot_filled.len()
    );
    println!(
        "[hold]      {} lambda bounds, sum {:.1} ps",
        prepared.lambda.len(),
        prepared.lambda.total()
    );
    println!("[offline]   preparation took {:?}", prepared.prep_time);

    // Designated period: the median of the untuned population.
    let periods: Vec<f64> = (0..200).map(|s| model.sample_chip(s).min_period_untuned()).collect();
    let td = stats::empirical_quantile(&periods, 0.5);
    println!("[period]    T_d = {td:.1} ps (median untuned period)\n");

    let mut iters = Vec::new();
    let mut passes = 0_usize;
    let mut ideal = 0_usize;
    let mut untuned = 0_usize;
    let mut coverage_hits = 0_usize;
    let mut coverage_total = 0_usize;
    for seed in 0..n_chips as u64 {
        let chip = model.sample_chip(10_000 + seed);
        let outcome = flow.run_chip(&prepared, &chip, td)?;
        iters.push(outcome.iterations as f64);
        if outcome.passes {
            passes += 1;
        }
        if effitest::flow::configure::ideal_configure_and_check(
            &model,
            &prepared.buffers,
            &chip,
            td,
        ) {
            ideal += 1;
        }
        if effitest::flow::configure::untuned_check(&chip, td) {
            untuned += 1;
        }
        // Prediction coverage: do the final ranges bracket the true delays?
        for p in 0..np {
            coverage_total += 1;
            let d = chip.setup_delay(p);
            if outcome.ranges[p].lower - 1e-9 <= d && d <= outcome.ranges[p].upper + 1e-9 {
                coverage_hits += 1;
            }
        }
    }

    let ta = stats::mean(&iters);
    println!("[test]      mean iterations per chip: {ta:.1} (+/- {:.1})", stats::std_dev(&iters));
    println!(
        "[test]      iterations per tested path: {:.2}",
        ta / prepared.tested_path_count() as f64
    );
    println!(
        "[predict]   range coverage of true delays: {:.2}%",
        coverage_hits as f64 / coverage_total as f64 * 100.0
    );
    println!("\n[yield @ T_d = {td:.1}]");
    let pct = |c: usize| c as f64 / n_chips as f64 * 100.0;
    println!("  untuned:       {:>5.1}%", pct(untuned));
    println!("  EffiTest:      {:>5.1}%", pct(passes));
    println!("  ideal tuning:  {:>5.1}%", pct(ideal));
    println!("  yield drop vs ideal: {:.1} points", pct(ideal) - pct(passes));
    Ok(())
}
