//! Hold-time tuning bounds (paper §3.5): how the target hold yield `Y`
//! shapes the lower bounds `lambda_ij` and what that costs in setup-side
//! tuning freedom.
//!
//! Run with: `cargo run --release --example hold_time_study [circuit]`
//! (default: s13207).

use effitest::flow::hold::{compute_hold_bounds, HoldConfig};
use effitest::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(|s| s.as_str()).unwrap_or("s13207");
    let spec = BenchmarkSpec::all_paper_circuits()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown circuit `{name}`"));

    let bench = GeneratedBenchmark::generate(&spec, 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let buffer = model.buffer_spec();
    println!("=== Hold-time tuning bounds: {} ===", spec.name);
    println!(
        "buffer range {} => max |x_i - x_j| = {:.1} ps\n",
        buffer,
        buffer.max() - buffer.min()
    );

    let header = format!(
        "{:<8} {:>8} {:>14} {:>14} {:>16}",
        "Y", "bounds", "sum lambda", "max lambda", "hold yield (MC)"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    for target in [1.0, 0.999, 0.99, 0.95, 0.90] {
        let config = HoldConfig { yield_target: target, samples: 512, seed: 99 };
        let bounds = compute_hold_bounds(&model, &config);
        let max_lambda = bounds.iter().map(|(_, l)| l).fold(f64::NEG_INFINITY, f64::max);
        // Fresh Monte-Carlo validation of the achieved hold yield.
        let n = 600;
        let mut pass = 0;
        for seed in 0..n {
            let chip = model.sample_chip(50_000 + seed);
            let ok =
                bounds.iter().all(|(p, lam)| chip.hold_bound(p).expect("hold path") <= lam + 1e-12);
            if ok {
                pass += 1;
            }
        }
        println!(
            "{:<8} {:>8} {:>14.1} {:>14.2} {:>15.1}%",
            target,
            bounds.len(),
            bounds.total(),
            max_lambda,
            pass as f64 / n as f64 * 100.0
        );
    }

    println!();
    println!("Reading the table: a stricter hold-yield target Y keeps more samples,");
    println!("which raises the lambda bounds (sum lambda grows toward 0), eating into");
    println!("the negative-shift freedom the setup-side configuration would like to");
    println!("use. The paper fixes Y = 0.99 as the sweet spot.");
}
