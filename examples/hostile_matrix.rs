//! Hostile-silicon driver: sweep the EffiTest flow over scenario cells
//! crossed with tester-noise levels and aging-drift models, and write the
//! JSON report.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example hostile_matrix [scale] [chips] [seeds]
//! ```
//!
//! * `scale` — `scaled_down` factor for the base circuit statistics
//!   (default 20; smaller means bigger circuits).
//! * `chips` — Monte-Carlo population per cell (default 8).
//! * `seeds` — benchmark-generation seeds per cell (default 1).
//!
//! Worker threads come from `EFFITEST_THREADS` (default: available
//! parallelism); the report lands at `EFFITEST_HOSTILE_OUT` (default
//! `HOSTILE.json` in the working directory). Reports are bitwise
//! identical across reruns and thread counts — the CI `hostile-smoke`
//! job runs this driver in a *debug* build (so every `debug_assert` is
//! armed) and diffs the JSON byte-for-byte between thread counts.

use effitest::flow::hostile::{hostile_matrix_to_json, run_hostile_scenario, HostileAxes};
use effitest::flow::population::{parse_env_count, threads_from_env};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    // Same hard-error rule as the EFFITEST_* variables: a typo'd count
    // must abort, not silently run the default matrix.
    let scale: usize = match args.get(1) {
        Some(raw) => parse_env_count("scale", raw)?,
        None => 20,
    };
    let chips: usize = match args.get(2) {
        Some(raw) => parse_env_count("chips", raw)?,
        None => 8,
    };
    let n_seeds: u64 = match args.get(3) {
        Some(raw) => parse_env_count("seeds", raw)? as u64,
        None => 1,
    };
    let threads = threads_from_env()?;

    let mut axes = HostileAxes::smoke(scale);
    axes.scenario.chip_counts = vec![chips];
    axes.scenario.seeds = (1..=n_seeds).collect();
    let cells = axes.cells();
    println!(
        "=== Hostile matrix: {} cells ({} scenario cells x {} noise levels x {} drifts), \
         {chips} chips each, {threads} threads ===\n",
        cells.len(),
        axes.scenario.cells().len(),
        axes.noise_rel.len(),
        axes.drifts.len(),
    );

    let header = format!(
        "{:<44} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>6} {:>6}",
        "cell", "y_t0", "y_kept", "y_adpt", "y_rtst", "it_adpt", "it_rtst", "contra", "widen"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    let mut reports = Vec::with_capacity(cells.len());
    let mut skipped = 0usize;
    for cell in &cells {
        // Skip-and-count: one degenerate cell must not abort the sweep.
        let r = match run_hostile_scenario(cell, threads) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skipping {}: {e}", cell.id());
                skipped += 1;
                continue;
            }
        };
        println!(
            "{:<44} {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}% {:>8.1} {:>8.1} {:>6} {:>6}",
            r.id,
            r.yield_t0 * 100.0,
            r.yield_aged_kept * 100.0,
            r.yield_aged_adaptive * 100.0,
            r.yield_aged_retest * 100.0,
            r.mean_iterations_adaptive,
            r.mean_iterations_retest,
            r.contradictions,
            r.widenings,
        );
        reports.push(r);
    }

    let json = hostile_matrix_to_json(&axes.scenario.base.name, &reports);
    let path = std::env::var("EFFITEST_HOSTILE_OUT").unwrap_or_else(|_| "HOSTILE.json".to_owned());
    std::fs::write(&path, &json)?;
    println!("\nrecorded {} cells ({skipped} skipped) -> {path}", reports.len());
    Ok(())
}
