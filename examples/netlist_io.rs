//! Netlist text-format round trip: generate a benchmark, dump it, parse it
//! back, and verify the result is identical and valid.
//!
//! Run with: `cargo run --release --example netlist_io [path]`
//! (default: writes to a temporary file).

use effitest::circuit::format;
use effitest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = BenchmarkSpec::iscas89_s9234().scaled_down(10);
    let bench = GeneratedBenchmark::generate(&spec, 3);
    let text = format::to_text(&bench.netlist, Some(&bench.paths));

    let path = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir().join("effitest_demo.netlist").display().to_string()
    });
    std::fs::write(&path, &text)?;
    println!("wrote {} bytes to {path}", text.len());

    let head: Vec<&str> = text.lines().take(12).collect();
    println!("\nfirst lines:\n{}", head.join("\n"));

    let reread = std::fs::read_to_string(&path)?;
    let (netlist, paths) = format::from_text(&reread)?;
    netlist.validate()?;
    paths.validate(&netlist)?;
    assert_eq!(netlist.flip_flop_count(), bench.netlist.flip_flop_count());
    assert_eq!(netlist.gate_count(), bench.netlist.gate_count());
    assert_eq!(netlist.buffer_count(), bench.netlist.buffer_count());
    assert_eq!(paths.len(), bench.paths.len());
    for (a, b) in paths.iter().zip(bench.paths.iter()) {
        assert_eq!(a.endpoints(), b.endpoints());
        assert_eq!(a.gates, b.gates);
    }
    println!(
        "\nround trip OK: {} flip-flops, {} gates, {} buffers, {} paths",
        netlist.flip_flop_count(),
        netlist.gate_count(),
        netlist.buffer_count(),
        paths.len()
    );
    Ok(())
}
