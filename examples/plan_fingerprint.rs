//! Emits a full plan fingerprint for thread-determinism checks.
//!
//! Builds the chip-independent flow plan (through the env-driven entry
//! point, so `EFFITEST_THREADS` governs the worker count) for every paper
//! topology plus a reduced large-tier circuit, and prints every
//! observable component — correlation groups, test batches, slot fills,
//! hold bounds, predicted sigmas (the conditioning-gain outputs), and the
//! convergence threshold — with floats as exact bit patterns.
//!
//! CI runs this at `EFFITEST_THREADS=1` and `4` and diffs the outputs:
//! the plan pipeline's contract is that they are **byte identical**. Set
//! `EFFITEST_PLAN_FINGERPRINT_OUT` to write to a file instead of stdout.
//!
//! ```sh
//! EFFITEST_THREADS=1 cargo run --release --example plan_fingerprint
//! ```

use std::fmt::Write as _;

use effitest::circuit::Topology;
use effitest::flow::select::SelectConfig;
use effitest::prelude::*;

fn fingerprint(out: &mut String, label: &str, plan: &FlowPlan<'_>) {
    writeln!(out, "[{label}]").unwrap();
    for (i, g) in plan.groups.iter().enumerate() {
        writeln!(
            out,
            "group {i}: members={:?} selected={:?} threshold={:016x} n_pcs={}",
            g.members,
            g.selected,
            g.threshold.to_bits(),
            g.n_pcs
        )
        .unwrap();
    }
    for (i, b) in plan.batches.batches.iter().enumerate() {
        writeln!(out, "batch {i}: {b:?}").unwrap();
    }
    writeln!(out, "slot_filled: {:?}", plan.batches.slot_filled).unwrap();
    let mut lambda: Vec<(usize, u64)> = plan.lambda.iter().map(|(p, l)| (p, l.to_bits())).collect();
    lambda.sort_unstable();
    writeln!(out, "hold_bounds: {lambda:?}").unwrap();
    for &(p, s) in &plan.predicted_sigmas {
        writeln!(out, "sigma {p}: {:016x}", s.to_bits()).unwrap();
    }
    writeln!(out, "epsilon: {:016x}", plan.epsilon.to_bits()).unwrap();
    writeln!(out, "tested: {}", plan.tested_path_count()).unwrap();
}

fn main() {
    let mut out = String::new();
    let flow = EffiTestFlow::new(FlowConfig::default());
    for &topology in Topology::all().iter() {
        let spec = BenchmarkSpec::iscas89_s9234().scaled_down(10).with_topology(topology);
        let bench = GeneratedBenchmark::generate(&spec, 1);
        let model = TimingModel::build(&bench, &VariationConfig::paper());
        let plan = flow.plan(&bench, &model).expect("plan");
        fingerprint(&mut out, topology.name(), &plan);
    }
    // A reduced large-tier circuit exercises the sparse/threaded paths the
    // paper topologies cannot reach (hub cliques, planted criticality).
    let large_flow = EffiTestFlow::new(FlowConfig {
        select: SelectConfig { criticality_fraction: Some(0.93), ..SelectConfig::default() },
        ..FlowConfig::default()
    });
    let spec = BenchmarkSpec::large(2_000);
    let bench = GeneratedBenchmark::generate(&spec, 1);
    let variation = VariationConfig { grid_dim: 4, ..VariationConfig::paper() };
    let model = TimingModel::build(&bench, &variation);
    let plan = large_flow.plan(&bench, &model).expect("plan");
    fingerprint(&mut out, "large_2000", &plan);

    match std::env::var("EFFITEST_PLAN_FINGERPRINT_OUT") {
        Ok(path) => {
            std::fs::write(&path, &out).expect("write fingerprint");
            println!("plan fingerprint -> {path} ({} bytes)", out.len());
        }
        Err(_) => print!("{out}"),
    }
}
