//! Serial-vs-parallel equivalence of the chip-population engine.
//!
//! Builds the chip-independent `FlowPlan` once, runs the same Monte-Carlo
//! population serially and on worker threads, verifies the outcomes are
//! bitwise identical, and reports the wall-clock comparison and the
//! population yield.
//!
//! Run with: `cargo run --release --example population [n_chips] [threads]`
//! (default: 64 chips, available parallelism).

use std::time::Instant;

use effitest::flow::population::{
    default_threads, parse_env_count, run_flow_population, run_population,
};
use effitest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    // Same hard-error rule as the EFFITEST_* variables: a typo'd count
    // must abort, not silently run the default population.
    let n_chips: usize = match args.get(1) {
        Some(raw) => parse_env_count("n_chips", raw)?,
        None => 64,
    };
    let threads: usize = match args.get(2) {
        Some(raw) => parse_env_count("threads", raw)?,
        None => default_threads(),
    };

    let spec = BenchmarkSpec::iscas89_s9234();
    println!("=== Population engine: {} chips of {} ===\n", n_chips, spec.name);

    let bench = GeneratedBenchmark::generate(&spec, 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let plan = flow.plan(&bench, &model)?;
    let td = model.nominal_period();
    println!(
        "[plan]      built once in {:?}: {} batches, {} tested of {} paths",
        plan.prep_time,
        plan.batches.len(),
        plan.tested_path_count(),
        model.path_count()
    );

    let serial_pop = PopulationConfig { n_chips, base_seed: 1000, threads: 1 };
    let started = Instant::now();
    let serial = run_flow_population(&flow, &plan, td, &serial_pop);
    let serial_wall = started.elapsed();
    println!("[serial]    1 thread:  {serial_wall:?}");

    let parallel_pop = PopulationConfig { threads, ..serial_pop };
    let started = Instant::now();
    let parallel = run_flow_population(&flow, &plan, td, &parallel_pop);
    let parallel_wall = started.elapsed();
    println!(
        "[parallel]  {} threads: {:?} ({:.2}x)",
        threads,
        parallel_wall,
        serial_wall.as_secs_f64() / parallel_wall.as_secs_f64()
    );

    // Bitwise equivalence of everything the experiments consume.
    assert_eq!(serial.len(), parallel.len());
    for (k, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.iterations, b.iterations, "iteration count differs on chip {k}");
        assert_eq!(a.passes, b.passes, "pass/fail differs on chip {k}");
        assert_eq!(a.configured, b.configured, "buffer configuration differs on chip {k}");
        for (p, (ra, rb)) in a.ranges.iter().zip(&b.ranges).enumerate() {
            assert!(
                ra.lower.to_bits() == rb.lower.to_bits()
                    && ra.upper.to_bits() == rb.upper.to_bits(),
                "range differs on chip {k}, path {p}"
            );
        }
    }
    println!("[check]     serial and parallel outcomes are bitwise identical");

    // The engine reuses one warm solver workspace per worker thread; that
    // reuse must be observationally invisible. A fresh workspace per chip
    // (`run_chip` builds its own) has to agree bitwise.
    let fresh = run_population(&model, &serial_pop, |_k, chip| {
        let o = flow.run_chip(&plan, chip, td).expect("plan-sampled chip always matches");
        (o.iterations, o.passes)
    });
    for (k, (a, &f)) in serial.iter().zip(&fresh).enumerate() {
        assert_eq!((a.iterations, a.passes), f, "workspace reuse visible on chip {k}");
    }
    println!("[check]     warm per-thread workspaces match fresh-per-chip workspaces");

    let passed = serial.iter().filter(|o| o.passes).count();
    let iters: u64 = serial.iter().map(|o| o.iterations).sum();
    println!(
        "[result]    yield {}/{} ({:.1}%), {:.1} tester iterations per chip",
        passed,
        n_chips,
        passed as f64 / n_chips as f64 * 100.0,
        iters as f64 / n_chips as f64
    );
    Ok(())
}
