//! Quickstart: the paper's Fig. 2 intuition, then a tiny end-to-end run.
//!
//! Part 1 rebuilds the paper's four-flip-flop example: a loop with
//! combinational delays 3, 8, 6, 5 has an untuned minimum clock period of
//! 8; with post-silicon tunable buffers the clock edges shift and the
//! minimum period drops to 5.5 (= average stage delay).
//!
//! Part 2 generates a small synthetic benchmark, runs the full EffiTest
//! flow on one simulated chip, and compares tester iterations against the
//! path-wise baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use effitest::prelude::*;
use effitest::solver::align::BufferVar;
use effitest::solver::config::{ConfigPath, ConfigProblem};

fn figure2_demo() {
    println!("== Part 1: paper Fig. 2 — tuning lowers the minimum period ==\n");
    // Four flip-flops F1..F4 in a loop; stage delays as in the figure.
    let delays = [3.0, 8.0, 6.0, 5.0]; // F1->F2, F2->F3, F3->F4, F4->F1
    let untuned = delays.iter().cloned().fold(0.0_f64, f64::max);
    println!("stage delays: {delays:?}");
    println!("minimum period without tuning: {untuned}");

    // Wide-range buffers on all four flip-flops (the demo point is the
    // timing algebra, not the range limits).
    let buffers: Vec<BufferVar> =
        (0..4).map(|_| BufferVar { min: -4.0, max: 4.0, steps: 33 }).collect();
    let paths: Vec<ConfigPath> = (0..4)
        .map(|i| ConfigPath {
            lower: delays[i],
            upper: delays[i],
            source_buffer: Some(i),
            sink_buffer: Some((i + 1) % 4),
            hold_lower_bound: None,
        })
        .collect();

    // Binary-search the smallest feasible period with tuning.
    let mut lo = 4.0_f64;
    let mut hi = untuned;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let problem =
            ConfigProblem { clock_period: mid, paths: paths.clone(), buffers: buffers.clone() };
        if problem.solve().is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    println!("minimum period with tuning:    {hi:.2} (paper: 5.5)");
    let problem =
        ConfigProblem { clock_period: 5.5, paths: paths.clone(), buffers: buffers.clone() };
    let sol = problem.solve().expect("5.5 is feasible");
    println!(
        "a feasible buffer assignment at T = 5.5: {:?}\n",
        sol.buffer_values.iter().map(|x| format!("{x:+.2}")).collect::<Vec<_>>()
    );
}

fn flow_demo() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Part 2: the EffiTest flow on a small synthetic benchmark ==\n");
    let spec = BenchmarkSpec::iscas89_s13207().scaled_down(8);
    let bench = GeneratedBenchmark::generate(&spec, 7);
    let (ns, ng, nb, np) = bench.stats();
    println!("benchmark {}: {ns} FFs, {ng} gates, {nb} buffers, {np} required paths", spec.name);

    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let prepared = flow.plan(&bench, &model)?;
    println!(
        "prepared: {} groups, {} paths tested ({} batches), epsilon {:.3} ps",
        prepared.groups.len(),
        prepared.tested_path_count(),
        prepared.batches.len(),
        prepared.epsilon,
    );

    let chip = model.sample_chip(42);
    let td = model.nominal_period();
    let outcome = flow.run_chip(&prepared, &chip, td)?;
    let baseline = flow.run_chip_path_wise(&prepared, &chip);
    println!("chip #42 at T_d = {td:.1} ps:");
    println!("  EffiTest iterations:  {:>6}", outcome.iterations);
    println!("  path-wise iterations: {:>6}", baseline.iterations);
    println!(
        "  reduction:            {:>5.1}%",
        (1.0 - outcome.iterations as f64 / baseline.iterations as f64) * 100.0
    );
    println!("  configured: {}", outcome.configured.is_some());
    println!("  final pass/fail test: {}", if outcome.passes { "PASS" } else { "FAIL" });
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    figure2_demo();
    flow_demo()
}
