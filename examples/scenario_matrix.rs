//! Scenario-matrix driver: sweep the EffiTest flow over the
//! (topology x variation x tuning-range x chip-count) grid and write the
//! JSON report.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example scenario_matrix [scale] [chips] [seeds]
//! ```
//!
//! * `scale` — `scaled_down` factor for the base circuit statistics
//!   (default 20; smaller means bigger circuits).
//! * `chips` — Monte-Carlo population per cell (default 8).
//! * `seeds` — benchmark-generation seeds per cell (default 1).
//!
//! Worker threads come from `EFFITEST_THREADS` (default: available
//! parallelism); the report lands at `EFFITEST_SCENARIO_OUT` (default
//! `SCENARIOS.json` in the working directory). Reports are bitwise
//! identical across reruns and thread counts — the CI `scenario-smoke`
//! job diffs them byte-for-byte.

use effitest::flow::population::{parse_env_count, threads_from_env};
use effitest::flow::scenarios::{matrix_to_json, run_scenario, ScenarioAxes};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    // Same hard-error rule as the EFFITEST_* variables: a typo'd count
    // must abort, not silently run the default matrix.
    let scale: usize = match args.get(1) {
        Some(raw) => parse_env_count("scale", raw)?,
        None => 20,
    };
    let chips: usize = match args.get(2) {
        Some(raw) => parse_env_count("chips", raw)?,
        None => 8,
    };
    let n_seeds: u64 = match args.get(3) {
        Some(raw) => parse_env_count("seeds", raw)? as u64,
        None => 1,
    };
    let threads = threads_from_env()?;

    let mut axes = ScenarioAxes::smoke(scale);
    axes.chip_counts = vec![chips];
    axes.seeds = (1..=n_seeds).collect();
    let cells = axes.cells();
    println!(
        "=== Scenario matrix: {} cells ({} topologies x {} variations x {} ranges x {} seeds), \
         {chips} chips each, {threads} threads ===\n",
        cells.len(),
        axes.topologies.len(),
        axes.variations.len(),
        axes.tuning_fractions.len(),
        axes.seeds.len(),
    );

    let header = format!(
        "{:<34} {:>4} {:>4} {:>8} {:>7} {:>7} {:>7} {:>8} {:>7}",
        "cell", "np", "npt", "t_a", "yield", "ideal", "untuned", "pred_err", "contra"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    let mut reports = Vec::with_capacity(cells.len());
    let mut skipped = 0usize;
    for cell in &cells {
        // Skip-and-count: one degenerate cell must not abort the sweep.
        let r = match run_scenario(cell, threads) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skipping {}: {e}", cell.id());
                skipped += 1;
                continue;
            }
        };
        println!(
            "{:<34} {:>4} {:>4} {:>8.1} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.3} {:>7}",
            r.id,
            r.np,
            r.npt,
            r.mean_iterations,
            r.yield_fraction * 100.0,
            r.ideal_yield * 100.0,
            r.untuned_yield * 100.0,
            r.prediction_mean_abs_err_sigma,
            r.contradictions,
        );
        reports.push(r);
    }

    let json = matrix_to_json(&axes.base.name, &reports);
    let path =
        std::env::var("EFFITEST_SCENARIO_OUT").unwrap_or_else(|_| "SCENARIOS.json".to_owned());
    std::fs::write(&path, &json)?;
    println!("\nrecorded {} cells ({skipped} skipped) -> {path}", reports.len());
    Ok(())
}
