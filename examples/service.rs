//! Test-floor service driver: acquire the chip-independent plan through
//! the persistent cache, stream a shuffled out-of-order measurement log
//! through the ingestion engine, and write the decision log.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example service [scale] [chips] [shuffle_seed]
//! ```
//!
//! * `scale` — `scaled_down` factor for the base circuit (default 24).
//! * `chips` — simulated chip population (default 6).
//! * `shuffle_seed` — seed of the deterministic event shuffle (default
//!   `0xD15C`); `0` streams events in order.
//!
//! Plan blobs live under `$EFFITEST_PLAN_CACHE` (unset: plans build
//! fresh, nothing is stored). Worker threads come from
//! `EFFITEST_THREADS`; the log lands at `EFFITEST_SERVICE_OUT` (default
//! `SERVICE.json`). Log bytes are identical across reruns, thread
//! counts, and arrival orders — the CI `service-smoke` job diffs them
//! byte-for-byte and asserts a cache hit after a driver restart via the
//! outcome token printed on stdout.

use effitest::flow::population::{parse_env_count, threads_from_env};
use effitest::prelude::*;

/// Chip-major event stream of one revision's population, derived from
/// the batch flow's measured bounds.
fn revision_events(revision: u64, outcomes: &[ChipOutcome]) -> Vec<MeasurementEvent> {
    let mut events = Vec::new();
    for (k, o) in outcomes.iter().enumerate() {
        for (p, &m) in o.measured.iter().enumerate() {
            if m {
                events.push(MeasurementEvent {
                    revision,
                    chip: k as u64,
                    path: p,
                    lower: o.ranges[p].lower,
                    upper: o.ranges[p].upper,
                });
            }
        }
    }
    events
}

/// Deterministic Fisher-Yates driven by a splitmix64 stream — the
/// driver must not depend on ambient randomness.
fn shuffle(events: &mut [MeasurementEvent], mut state: u64) {
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..events.len()).rev() {
        events.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let scale: usize = match args.get(1) {
        Some(raw) => parse_env_count("scale", raw)?,
        None => 24,
    };
    let chips: usize = match args.get(2) {
        Some(raw) => parse_env_count("chips", raw)?,
        None => 6,
    };
    let shuffle_seed: u64 = match args.get(3) {
        Some(raw) => parse_env_count("shuffle_seed", raw)? as u64,
        None => 0xD15C,
    };
    let threads = threads_from_env()?;

    let spec = BenchmarkSpec::iscas89_s13207().scaled_down(scale);
    let bench = GeneratedBenchmark::generate(&spec, 7);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());

    // Plan acquisition: through the persistent cache when one is
    // configured, fresh otherwise. The outcome token on stdout is what
    // CI greps to assert a hit after a driver restart.
    let (plan, outcome_token) = match PlanCache::from_env() {
        Some(mut cache) => {
            let (plan, outcome) = cache.load_or_build(&flow, &bench, &model)?;
            (plan, outcome.token())
        }
        None => (flow.plan(&bench, &model)?, "uncached"),
    };
    let fingerprint = plan_fingerprint(&plan);
    println!(
        "plan: {} tested paths, cache {outcome_token}, fingerprint {fingerprint:#018x}",
        plan.predictor.planned_paths().len(),
    );

    let td = model.nominal_period();
    let outcomes = run_flow_population_batched(
        &flow,
        &plan,
        td,
        &PopulationConfig { n_chips: chips, base_seed: 11, threads },
    );
    let mut events = revision_events(1, &outcomes);
    if shuffle_seed != 0 {
        shuffle(&mut events, shuffle_seed);
    }

    let mut engine = ServiceEngine::new(ServiceConfig { threads, ..ServiceConfig::default() });
    engine.register(1, &plan, td)?;
    for e in events {
        engine.ingest(e)?;
    }
    let decisions = engine.drain();
    if engine.pending_chips() != 0 {
        return Err(format!("{} chips never completed", engine.pending_chips()).into());
    }

    let stats = *engine.stats();
    let configured = decisions.iter().filter(|d| d.buffers.is_some()).count();
    println!(
        "service: {} events ({} duplicates, {} contradictions) -> {} decisions \
         ({configured} configured, {} rejected), {threads} threads",
        stats.events,
        stats.duplicates,
        stats.contradictions,
        decisions.len(),
        decisions.len() - configured,
    );

    let json = service_log_to_json(&[(1, fingerprint)], &stats, &decisions);
    let path = std::env::var("EFFITEST_SERVICE_OUT").unwrap_or_else(|_| "SERVICE.json".to_owned());
    std::fs::write(&path, &json)?;
    println!("recorded {} decisions -> {path}", decisions.len());
    Ok(())
}
