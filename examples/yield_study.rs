//! Table-2-style yield study: untuned vs EffiTest vs ideal configuration
//! at the two designated periods (50% and 84.13% untuned-yield quantiles),
//! for a selectable circuit.
//!
//! Run with: `cargo run --release --example yield_study [circuit] [n_chips]`
//! (default: s13207, 150 chips).

use effitest::flow::configure::{ideal_configure_and_check, untuned_check};
use effitest::linalg::stats;
use effitest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(|s| s.as_str()).unwrap_or("s13207");
    let n_chips: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(150);
    let spec = BenchmarkSpec::all_paper_circuits()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown circuit `{name}`"));

    let bench = GeneratedBenchmark::generate(&spec, 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let prepared = flow.plan(&bench, &model)?;

    let chips: Vec<ChipInstance> =
        (0..n_chips as u64).map(|s| model.sample_chip(1000 + s)).collect();
    let untuned_periods: Vec<f64> = chips.iter().map(|c| c.min_period_untuned()).collect();
    let t1 = stats::empirical_quantile(&untuned_periods, 0.5);
    let t2 = stats::empirical_quantile(&untuned_periods, 0.8413);

    println!("=== Yield study: {} ({n_chips} chips) ===", spec.name);
    println!("T1 = {t1:.1} ps (50% untuned), T2 = {t2:.1} ps (84.13% untuned)\n");

    let header = format!("{:<22} {:>10} {:>10}", "configuration policy", "yield@T1", "yield@T2");
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    let mut rows: Vec<(&str, [usize; 2])> =
        vec![("untuned (x = 0)", [0, 0]), ("EffiTest flow", [0, 0]), ("ideal measurement", [0, 0])];
    for chip in &chips {
        let (predicted, _aligned) = flow.test_and_predict(&prepared, chip);
        for (slot, &td) in [t1, t2].iter().enumerate() {
            if untuned_check(chip, td) {
                rows[0].1[slot] += 1;
            }
            let (_, passes, _) = flow.configure_and_check(&prepared, chip, &predicted.ranges, td);
            if passes {
                rows[1].1[slot] += 1;
            }
            if ideal_configure_and_check(&model, &prepared.buffers, chip, td) {
                rows[2].1[slot] += 1;
            }
        }
    }
    for (label, counts) in &rows {
        println!(
            "{label:<22} {:>9.1}% {:>9.1}%",
            counts[0] as f64 / n_chips as f64 * 100.0,
            counts[1] as f64 / n_chips as f64 * 100.0
        );
    }
    let drop1 = (rows[2].1[0] as f64 - rows[1].1[0] as f64) / n_chips as f64 * 100.0;
    let drop2 = (rows[2].1[1] as f64 - rows[1].1[1] as f64) / n_chips as f64 * 100.0;
    println!(
        "\nyield drop from test/prediction inaccuracy: {drop1:.1} points @T1, {drop2:.1} points @T2"
    );
    println!("(the paper reports drops of roughly 1-2 points)");
    Ok(())
}
