//! # EffiTest — reproduction of the DAC 2016 paper
//!
//! *EffiTest: Efficient Delay Test and Statistical Prediction for
//! Configuring Post-silicon Tunable Buffers* (Zhang, Li, Schlichtmann,
//! DAC 2016, DOI 10.1145/2897937.2898017).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`linalg`] — dense linear algebra (Cholesky, Jacobi eigen, PCA,
//!   conditional Gaussians).
//! * [`circuit`] — netlist model, placement, synthetic benchmark generator
//!   reproducing the paper's Table 1 circuit statistics.
//! * [`ssta`] — spatially correlated process variations, canonical delay
//!   forms, Monte-Carlo chips.
//! * [`solver`] — simplex LP, branch-and-bound MILP, difference
//!   constraints, alignment and buffer-configuration solvers.
//! * [`tester`] — the virtual tester (frequency stepping with tuning-buffer
//!   scan configuration).
//! * [`flow`] — the EffiTest flow itself: the chip-independent
//!   `FlowPlan`, the parallel chip-population engine (`flow::population`),
//!   drivers for every experiment in the paper (`flow::experiments`), and
//!   the scenario-matrix engine sweeping topology, variation structure,
//!   tuning range, and population size (`flow::scenarios`), plus the
//!   test-floor service layer: the persistent content-addressed plan
//!   cache (`flow::cache`) and the streaming out-of-order measurement
//!   ingestion engine (`flow::service`).
//!
//! # Quickstart
//!
//! ```
//! use effitest::prelude::*;
//!
//! // Generate a small benchmark, prepare the flow, run one chip.
//! let spec = BenchmarkSpec::iscas89_s9234().scaled_down(20);
//! let bench = GeneratedBenchmark::generate(&spec, 7);
//! let model = TimingModel::build(&bench, &VariationConfig::paper());
//! let flow = EffiTestFlow::new(FlowConfig::default());
//! let prepared = flow.plan(&bench, &model).unwrap();
//! let chip = model.sample_chip(42);
//! let outcome = flow.run_chip(&prepared, &chip, model.nominal_period()).unwrap();
//! assert!(outcome.iterations > 0);
//! ```

pub mod testkit;

pub use effitest_circuit as circuit;
pub use effitest_core as flow;
pub use effitest_linalg as linalg;
pub use effitest_solver as solver;
pub use effitest_ssta as ssta;
pub use effitest_tester as tester;

/// Convenience re-exports of the types most programs need.
pub mod prelude {
    pub use effitest_circuit::{
        BenchmarkSpec, FlipFlopId, GateId, GeneratedBenchmark, Netlist, PathId, Topology,
        TuningBufferSpec,
    };
    pub use effitest_core::cache::{plan_cache_key, plan_fingerprint, CacheOutcome, PlanCache};
    pub use effitest_core::experiments::ExperimentConfig;
    pub use effitest_core::hostile::{HostileAxes, HostileReport, HostileSpec};
    pub use effitest_core::population::{
        run_flow_population, run_flow_population_batched, run_population, run_population_scratch,
        PopulationConfig,
    };
    pub use effitest_core::scenarios::{MatrixRun, ScenarioAxes, ScenarioReport, ScenarioSpec};
    pub use effitest_core::service::{
        service_log_to_json, MeasurementEvent, ServiceConfig, ServiceEngine, ServiceError,
        ServiceStats, TuningDecision,
    };
    pub use effitest_core::{
        BatchPredictWorkspace, BatchPredictedRanges, ChipMatrix, ChipOutcome, EffiTestFlow,
        FlowConfig, FlowPlan, FlowWorkspace, PredictWorkspace, Predictor,
    };
    pub use effitest_ssta::{
        ChipInstance, DriftModel, TimingModel, VariationConfig, VariationProfile,
    };
    pub use effitest_tester::{
        chip_passes, ChipBank, ContradictionPolicy, DelayBounds, TesterModel, VirtualTester,
    };
}
