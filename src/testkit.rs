//! Shared test harness for the workspace's integration tests and for
//! downstream PRs that need fast, reproducible regression fixtures.
//!
//! Everything here is deterministic: fixtures are generated from pinned
//! [`BenchmarkSpec`]s and pinned seeds, so two runs (or two machines)
//! always see byte-identical benchmarks and chips. The golden-value
//! regression test (`tests/golden.rs`) pins FNV-64 hashes of the generated
//! netlists through [`fnv64`]; any silent drift in the generator or the
//! vendored RNG shows up as a hash mismatch there rather than as a
//! mysterious statistical failure elsewhere.

use crate::prelude::*;

/// The shared fallible readback for the workspace's flat JSON reports
/// (scenario matrices, hostile matrices, service decision logs, bench
/// records) — typed errors instead of panicky string splitting.
pub use effitest_core::report::{parse_embedded_reports, FlatReport, FlatValue, ReportError};

/// The seed used by golden-value fixtures throughout the test suite.
pub const GOLDEN_SEED: u64 = 7;

/// A small-but-nontrivial benchmark plus its timing model: the s13207
/// circuit scaled down by `scale`, generated with `seed`.
///
/// `scale = 8` yields a circuit with enough paths (≥ 30) for the
/// multiplexing and prediction machinery to engage, while `prepare` +
/// `run_chip` still complete in tens of milliseconds — the sweet spot for
/// integration tests.
pub fn fixture(scale: usize, seed: u64) -> (GeneratedBenchmark, TimingModel) {
    let spec = BenchmarkSpec::iscas89_s13207().scaled_down(scale);
    let bench = GeneratedBenchmark::generate(&spec, seed);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    (bench, model)
}

/// The quickstart fixture from the facade doctest and README: s9234
/// scaled down 20x, generated with [`GOLDEN_SEED`].
pub fn quickstart_fixture() -> (GeneratedBenchmark, TimingModel) {
    let spec = BenchmarkSpec::iscas89_s9234().scaled_down(20);
    let bench = GeneratedBenchmark::generate(&spec, GOLDEN_SEED);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    (bench, model)
}

/// FNV-1a 64-bit hash, used to pin golden netlist dumps compactly.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts `|actual - expected| <= tol`, with a readable failure message.
#[track_caller]
pub fn assert_close(actual: f64, expected: f64, tol: f64) {
    assert!(
        (actual - expected).abs() <= tol,
        "expected {actual} to be within {tol} of {expected} (off by {})",
        (actual - expected).abs()
    );
}

/// Asserts `|actual - expected| <= rel_tol * max(|expected|, 1)`.
#[track_caller]
pub fn assert_rel_close(actual: f64, expected: f64, rel_tol: f64) {
    let scale = expected.abs().max(1.0);
    assert!(
        (actual - expected).abs() <= rel_tol * scale,
        "expected {actual} to be within {rel_tol:.1e} (relative) of {expected}"
    );
}

/// Asserts `lo <= value <= hi`.
#[track_caller]
pub fn assert_within(value: f64, lo: f64, hi: f64) {
    assert!((lo..=hi).contains(&value), "expected {value} to lie in [{lo}, {hi}]");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let (a, _) = fixture(8, 3);
        let (b, _) = fixture(8, 3);
        assert_eq!(a.netlist, b.netlist);
        assert_eq!(a.paths, b.paths);
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn tolerance_asserts_accept_in_range_values() {
        assert_close(1.0, 1.05, 0.1);
        assert_rel_close(100.0, 101.0, 0.02);
        assert_within(0.5, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "to be within")]
    fn assert_close_rejects_out_of_tolerance() {
        assert_close(1.0, 2.0, 0.1);
    }
}
