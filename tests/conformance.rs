//! Differential and matrix conformance suite.
//!
//! Two layers of guarantees over the scenario matrix:
//!
//! 1. **Differential solver conformance** — on small generated instances
//!    of *every* topology, the alignment problem each test batch poses is
//!    solved both exactly (branch-and-bound MILP, accepted only when it
//!    proves `MilpStatus::Optimal` by returning a solution) and with the
//!    production coordinate-descent heuristic; the heuristic objective
//!    must stay within a stated bound of the optimum.
//! 2. **Matrix determinism** — a ≥ 12-cell (topology x variation) scenario
//!    matrix produces byte-identical JSON reports across reruns and
//!    worker-thread counts.

use effitest::circuit::{BenchmarkSpec, Topology};
use effitest::flow::aligned_test::{batch_alignment_problem, AlignedTestConfig};
use effitest::flow::scenarios::{matrix_to_json, run_matrix, ScenarioAxes};
use effitest::flow::{EffiTestFlow, FlowConfig, FlowPlan};
use effitest::solver::align::AlignmentProblem;
use effitest::ssta::{TimingModel, VariationProfile};

/// Per-instance bound: the heuristic may lose at most 15% (plus float
/// slack) against the proven optimum on any single batch.
const PER_INSTANCE_BOUND: f64 = 1.15;
/// Aggregate bound: summed over all instances of the matrix the loss must
/// stay within 2%.
const AGGREGATE_BOUND: f64 = 1.02;

fn small_axes() -> ScenarioAxes {
    let mut axes = ScenarioAxes::smoke(40);
    axes.chip_counts = vec![2];
    axes.flow.hold.samples = 32;
    axes
}

/// The alignment problem a test batch poses at the start of the aligned
/// test: production's own construction
/// ([`batch_alignment_problem`], exported from `aligned_test` precisely
/// so this oracle cannot drift from the in-place loop), at the initial
/// range centers (the model means) under the default config.
fn batch_problem(plan: &FlowPlan<'_>, batch: &[usize]) -> AlignmentProblem {
    let centers: Vec<f64> = batch.iter().map(|&p| plan.model.path_mean(p)).collect();
    batch_alignment_problem(
        plan.model,
        &plan.lambda,
        batch,
        &centers,
        &AlignedTestConfig::default(),
    )
}

#[test]
fn heuristic_alignment_stays_within_bound_of_exact_optimum_on_every_topology() {
    let base = BenchmarkSpec::iscas89_s13207().scaled_down(20);
    let flow = EffiTestFlow::new(FlowConfig::default());
    let mut compared = 0_usize;
    let mut sum_fast = 0.0_f64;
    let mut sum_exact = 0.0_f64;

    for topology in Topology::all() {
        for variation in [VariationProfile::SpatiallyCorrelated, VariationProfile::HighSigmaTail] {
            let spec = base.clone().with_topology(topology);
            let bench = effitest::circuit::GeneratedBenchmark::generate(&spec, 1);
            let model = TimingModel::build(&bench, &variation.config());
            let plan = flow.plan(&bench, &model).expect("non-empty benchmark");

            for batch in &plan.batches.batches {
                let problem = batch_problem(&plan, batch);
                // Exact oracle: solve_exact returns a solution only when
                // branch and bound proved MilpStatus::Optimal; anything
                // else (node limit, infeasible) is excluded by
                // construction — and must not happen on these small
                // instances.
                let exact = problem.solve_exact().unwrap_or_else(|| {
                    panic!("{topology}/{variation}: exact MILP failed on a small batch")
                });
                let fast = problem.solve_coordinate_descent(&vec![0.0; problem.buffers.len()]);
                assert!(
                    problem.is_feasible(&fast.buffer_values, 1e-9),
                    "{topology}/{variation}: heuristic produced an infeasible assignment"
                );
                assert!(
                    fast.objective <= exact.objective * PER_INSTANCE_BOUND + 1e-6,
                    "{topology}/{variation}: heuristic {} vs optimal {} exceeds the \
                     {PER_INSTANCE_BOUND}x bound",
                    fast.objective,
                    exact.objective,
                );
                compared += 1;
                sum_fast += fast.objective;
                sum_exact += exact.objective;
            }
        }
    }

    assert!(compared >= 12, "only {compared} exact-vs-heuristic comparisons ran");
    assert!(
        sum_fast <= sum_exact * AGGREGATE_BOUND + 1e-6,
        "aggregate heuristic cost {sum_fast} vs optimal {sum_exact} exceeds the \
         {AGGREGATE_BOUND}x bound over {compared} instances"
    );
}

#[test]
fn scenario_matrix_covers_cells_and_reports_are_bitwise_stable() {
    let axes = small_axes();
    // Coverage: the matrix spans at least 12 distinct (topology x
    // variation) cells.
    let cells = axes.cells();
    let pairs: std::collections::HashSet<(&str, &str)> =
        cells.iter().map(|c| (c.topology.name(), c.variation.name())).collect();
    assert!(pairs.len() >= 12, "matrix too small: {} (topology x variation) cells", pairs.len());

    // Determinism: byte-identical JSON across a rerun and across worker
    // thread counts.
    let run1 = matrix_to_json(&axes.base.name, &run_matrix(&axes, 1).reports);
    let run2 = matrix_to_json(&axes.base.name, &run_matrix(&axes, 1).reports);
    assert_eq!(run1, run2, "scenario matrix is not deterministic across reruns");
    let run4 = matrix_to_json(&axes.base.name, &run_matrix(&axes, 4).reports);
    assert_eq!(run1, run4, "scenario matrix drifted with the worker-thread count");

    // Every cell made it into the report, in cell order.
    for cell in &cells {
        assert!(run1.contains(&format!("\"id\": \"{}\"", cell.id())), "missing cell {}", cell.id());
    }
}

#[test]
fn scenario_metrics_respect_flow_invariants_on_every_cell() {
    // Sanity bars that must hold on every topology and variation: the
    // ideal measurement dominates the proposed flow, fractions are
    // fractions, and the flow actually tested something.
    let axes = small_axes();
    let run = run_matrix(&axes, 4);
    assert!(run.failures.is_empty(), "feasible cells failed: {:?}", run.failures);
    for report in run.reports {
        assert!(report.npt >= 1 && report.npt <= report.np, "{}: npt out of range", report.id);
        for y in [
            report.yield_fraction,
            report.ideal_yield,
            report.untuned_yield,
            report.prediction_coverage,
        ] {
            assert!((0.0..=1.0).contains(&y), "{}: fraction {y} out of range", report.id);
        }
        assert!(
            report.ideal_yield + 1e-9 >= report.yield_fraction,
            "{}: inaccuracy cannot gain yield",
            report.id
        );
        assert!(report.mean_iterations > 0.0, "{}: no tester iterations", report.id);
        assert!(
            report.prediction_max_abs_err_sigma + 1e-12 >= report.prediction_mean_abs_err_sigma,
            "{}: max error below mean",
            report.id
        );
    }
}
