//! End-to-end integration tests across the whole workspace: generation ->
//! SSTA -> selection -> batching -> aligned test -> prediction ->
//! configuration -> pass/fail.

use effitest::flow::configure::{ideal_configure_and_check, untuned_check};
use effitest::linalg::stats;
use effitest::prelude::*;
use effitest::testkit::{assert_within, fixture};

#[test]
fn flow_is_deterministic_for_fixed_seeds() {
    let (bench_a, model_a) = fixture(8, 3);
    let (bench_b, model_b) = fixture(8, 3);
    let flow = EffiTestFlow::new(FlowConfig::default());
    let prep_a = flow.plan(&bench_a, &model_a).expect("prepare");
    let prep_b = flow.plan(&bench_b, &model_b).expect("prepare");
    assert_eq!(prep_a.batches.batches, prep_b.batches.batches);

    let chip_a = model_a.sample_chip(5);
    let chip_b = model_b.sample_chip(5);
    assert_eq!(chip_a, chip_b);
    let td = model_a.nominal_period();
    let out_a = flow.run_chip(&prep_a, &chip_a, td).expect("run");
    let out_b = flow.run_chip(&prep_b, &chip_b, td).expect("run");
    assert_eq!(out_a.iterations, out_b.iterations);
    assert_eq!(out_a.configured, out_b.configured);
    assert_eq!(out_a.passes, out_b.passes);
}

#[test]
fn iteration_reduction_holds_across_seeds() {
    let (bench, model) = fixture(8, 1);
    let flow = EffiTestFlow::new(FlowConfig::default());
    let prepared = flow.plan(&bench, &model).expect("prepare");
    let td = model.nominal_period();

    let mut ours = 0_u64;
    let mut baseline = 0_u64;
    for seed in 0..8 {
        let chip = model.sample_chip(100 + seed);
        ours += flow.run_chip(&prepared, &chip, td).expect("run").iterations;
        baseline += flow.run_chip_path_wise(&prepared, &chip).iterations;
    }
    let reduction = 1.0 - ours as f64 / baseline as f64;
    assert!(
        reduction > 0.6,
        "end-to-end reduction only {:.1}% ({} vs {})",
        reduction * 100.0,
        ours,
        baseline
    );
}

#[test]
fn measured_and_predicted_ranges_cover_true_delays() {
    let (bench, model) = fixture(8, 2);
    let flow = EffiTestFlow::new(FlowConfig::default());
    let prepared = flow.plan(&bench, &model).expect("prepare");
    let td = model.nominal_period();

    let mut hits = 0_usize;
    let mut total = 0_usize;
    for seed in 0..6 {
        let chip = model.sample_chip(500 + seed);
        let outcome = flow.run_chip(&prepared, &chip, td).expect("run");
        for p in 0..bench.paths.len() {
            total += 1;
            let d = chip.setup_delay(p);
            if outcome.ranges[p].lower - 1e-9 <= d && d <= outcome.ranges[p].upper + 1e-9 {
                hits += 1;
            }
        }
    }
    let coverage = hits as f64 / total as f64;
    assert_within(coverage, 0.9, 1.0);
}

#[test]
fn yield_ordering_untuned_effitest_ideal() {
    let (bench, model) = fixture(8, 4);
    let flow = EffiTestFlow::new(FlowConfig::default());
    let prepared = flow.plan(&bench, &model).expect("prepare");

    let periods: Vec<f64> = (0..150).map(|s| model.sample_chip(s).min_period_untuned()).collect();
    let td = stats::empirical_quantile(&periods, 0.5);

    let n = 60_u64;
    let (mut untuned, mut ours, mut ideal) = (0, 0, 0);
    for seed in 0..n {
        let chip = model.sample_chip(3000 + seed);
        if untuned_check(&chip, td) {
            untuned += 1;
        }
        if flow.run_chip(&prepared, &chip, td).expect("run").passes {
            ours += 1;
        }
        if ideal_configure_and_check(&model, &prepared.buffers, &chip, td) {
            ideal += 1;
        }
    }
    assert!(ideal >= ours, "ideal {ideal} must dominate EffiTest {ours}");
    assert!(ideal > untuned, "tuning must rescue chips at the median period");
    let drop = (ideal - ours) as f64 / n as f64;
    assert!(drop < 0.15, "yield drop too large: {drop:.2}");
}

#[test]
fn tested_paths_converge_to_epsilon() {
    let (bench, model) = fixture(8, 6);
    let flow = EffiTestFlow::new(FlowConfig::default());
    let prepared = flow.plan(&bench, &model).expect("prepare");
    let chip = model.sample_chip(77);
    let outcome = flow.run_chip(&prepared, &chip, model.nominal_period()).expect("run");
    let tested = prepared.batches.tested_paths();
    for &p in &tested {
        assert!(outcome.measured[p], "tested path {p} not marked measured");
        assert!(
            outcome.ranges[p].width() <= prepared.epsilon + 1e-9,
            "tested path {p} did not converge: width {}",
            outcome.ranges[p].width()
        );
    }
    // And predicted paths must carry wider (statistical) ranges.
    let some_predicted = (0..bench.paths.len()).find(|p| !tested.contains(p));
    if let Some(p) = some_predicted {
        assert!(outcome.ranges[p].width() > prepared.epsilon);
    }
}

#[test]
fn facade_prelude_compiles_and_runs() {
    // The README quickstart path, as a test.
    let (bench, model) = effitest::testkit::quickstart_fixture();
    let flow = EffiTestFlow::new(FlowConfig::default());
    let prepared = flow.plan(&bench, &model).expect("prepare");
    let chip = model.sample_chip(42);
    let outcome = flow.run_chip(&prepared, &chip, model.nominal_period()).expect("run");
    assert!(outcome.iterations > 0);
}

#[test]
fn population_engine_runs_the_flow_at_env_threads() {
    // Thread count straight from EFFITEST_THREADS (the CI matrix runs
    // this suite at 1 and 4), so each matrix leg drives the full flow
    // through a genuinely different worker count.
    use effitest::flow::population::{run_flow_population, threads_from_env, PopulationConfig};
    let threads = threads_from_env().expect("EFFITEST_THREADS must be a positive integer");
    let (bench, model) = fixture(8, 3);
    let flow = EffiTestFlow::new(FlowConfig::default());
    let plan = flow.plan(&bench, &model).expect("plan");
    let td = model.nominal_period();
    let pop = PopulationConfig { n_chips: 8, base_seed: 500, threads };
    let outcomes = run_flow_population(&flow, &plan, td, &pop);
    let serial = run_flow_population(&flow, &plan, td, &PopulationConfig { threads: 1, ..pop });
    for (k, (a, b)) in outcomes.iter().zip(&serial).enumerate() {
        assert_eq!(a.iterations, b.iterations, "iterations drifted on chip {k}");
        assert_eq!(a.passes, b.passes, "pass/fail drifted on chip {k}");
        assert_eq!(a.configured, b.configured, "configuration drifted on chip {k}");
    }
}

#[test]
fn extreme_criticality_preselection_survives_sparse_topologies() {
    // `criticality_fraction` near (and at) 1.0 leaves only the thinnest
    // critical tail — on the sparse-outlier topology sometimes a lone
    // path — so every downstream stage (grouping, batching, slot filling,
    // aligned test, prediction, configuration) must cope with a nearly
    // empty selection instead of panicking on an empty reduction.
    use effitest::flow::select::SelectConfig;
    let spec =
        BenchmarkSpec::iscas89_s9234().scaled_down(20).with_topology(Topology::SparseOutliers);
    let bench = GeneratedBenchmark::generate(&spec, 11);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    for fraction in [0.9, 0.99, 1.0] {
        let config = FlowConfig {
            select: SelectConfig {
                criticality_fraction: Some(fraction),
                ..SelectConfig::default()
            },
            ..FlowConfig::default()
        };
        let flow = EffiTestFlow::new(config);
        let plan = flow.plan(&bench, &model).expect("plan under extreme pre-selection");
        let chip = model.sample_chip(77);
        let outcome = flow.run_chip(&plan, &chip, model.nominal_period()).expect("run");
        // At fraction 1.0 at least the argmax path survives pre-selection.
        assert!(!plan.groups.is_empty(), "fraction {fraction} lost every group");
        assert!(outcome.iterations > 0, "fraction {fraction} probed nothing");
        for (p, b) in outcome.ranges.iter().enumerate() {
            assert!(
                b.lower.is_finite() && b.upper.is_finite() && b.lower <= b.upper,
                "fraction {fraction}: invalid range on path {p}"
            );
        }
    }
}
