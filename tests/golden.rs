//! Golden-value regression tests pinning the synthetic benchmark
//! generator.
//!
//! Every circuit of the paper's Table 1 is generated with the pinned
//! [`testkit::GOLDEN_SEED`] and checked against frozen statistics (flip
//! flops `ns`, gates `ng`, buffers `nb`, required paths `np`, short paths)
//! and an FNV-64 hash of the full plain-text netlist dump. The hash pins
//! the exact generator output — topology, placement, buffer assignment,
//! and path lists — so any drift in the generator or the vendored RNG
//! fails loudly here instead of surfacing as flaky statistical tests
//! downstream.
//!
//! If a PR changes the generator (or the RNG) *intentionally*, regenerate
//! the table below and say so in the PR description; these values are
//! otherwise load-bearing.

use effitest::circuit::{format, BenchmarkSpec, GeneratedBenchmark};
use effitest::testkit::{self, fnv64, GOLDEN_SEED};

/// (name, ns, ng, nb, np, short paths, fnv64 of the text dump).
const GOLDEN: &[(&str, usize, usize, usize, usize, usize, u64)] = &[
    ("s9234", 211, 5597, 2, 80, 49, 0xbb28_9af7_1622_8c48),
    ("s13207", 638, 7951, 5, 485, 320, 0xd377_008f_3c41_2cb1),
    ("s15850", 534, 9772, 5, 397, 227, 0xc3e8_67d3_c4ae_68ed),
    ("s38584", 1426, 19253, 7, 370, 259, 0x3bb8_ef5a_3b31_e12a),
    ("mem_ctrl", 1065, 10327, 10, 3016, 1274, 0x5db9_b917_64d5_28e7),
    ("usb_funct", 1746, 14381, 17, 482, 304, 0x6f8b_1a73_abe2_433d),
    ("ac97_ctrl", 2199, 9208, 21, 780, 425, 0xc9dc_a6fa_f301_79e1),
    ("pci_bridge32", 3321, 12494, 32, 3472, 1759, 0x4766_8a4f_820c_db87),
];

#[test]
fn table1_circuits_match_golden_stats_and_hashes() {
    let specs = BenchmarkSpec::all_paper_circuits();
    assert_eq!(specs.len(), GOLDEN.len(), "paper circuit list changed");
    for (spec, &(name, ns, ng, nb, np, shorts, hash)) in specs.iter().zip(GOLDEN) {
        assert_eq!(spec.name, name, "circuit order changed");
        let bench = GeneratedBenchmark::generate(spec, GOLDEN_SEED);
        assert_eq!(bench.stats(), (ns, ng, nb, np), "stats drifted for {name}");
        assert_eq!(
            bench.short_paths.iter().flatten().count(),
            shorts,
            "short-path count drifted for {name}"
        );
        let text = format::to_text(&bench.netlist, Some(&bench.paths));
        assert_eq!(
            fnv64(text.as_bytes()),
            hash,
            "netlist dump drifted for {name}: new hash 0x{:016x}",
            fnv64(text.as_bytes())
        );
        // The generated stats also have to agree with the requested spec —
        // the generator must hit Table 1 exactly, not just reproducibly.
        assert_eq!((ns, ng, nb, np), (spec.ns, spec.ng, spec.nb, spec.np));
    }
}

#[test]
fn quickstart_fixture_is_pinned() {
    let (bench, model) = testkit::quickstart_fixture();
    let (ns, ng, nb, np) = bench.stats();
    assert_eq!((ns, ng, nb, np), (12, 279, 2, 6));
    // The derived timing quantities are deterministic too; pin them with a
    // tolerance so innocuous float reassociation doesn't trip the test.
    testkit::assert_rel_close(model.nominal_period(), 178.0, 1e-9);
}

#[test]
fn golden_seed_chip_sampling_is_stable() {
    let (_bench, model) = testkit::fixture(10, GOLDEN_SEED);
    let a = model.sample_chip(42);
    let b = model.sample_chip(42);
    assert_eq!(a, b, "chip sampling must be a pure function of the seed");
}
