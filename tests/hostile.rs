//! Hostile-silicon end-to-end guarantees: noisy/quantized testers, aging
//! drift, and adaptive re-tuning through the facade crate.
//!
//! Everything here runs the *real* flow (plan -> aligned test ->
//! prediction -> configuration -> final check) under non-ideal conditions
//! and holds the three load-bearing properties:
//!
//! 1. **No panics** — noisy probes contradict proven bounds routinely;
//!    every contradiction must be absorbed (widened and counted), never
//!    asserted away. In debug builds this suite proves the
//!    `debug_assert`s stay silent on the hostile path.
//! 2. **Bitwise determinism** — noisy and drifted cells serialize
//!    byte-identically at any worker-thread count, because noise streams
//!    are keyed by (seed, chip, path, probe index), never by thread or
//!    global probe order.
//! 3. **Engine parity** — the batched population engine matches the
//!    per-chip engine bit for bit under a noisy tester too.

use effitest::flow::hostile::{hostile_matrix_to_json, run_hostile_matrix, HostileAxes};
use effitest::flow::population::{run_flow_population, run_flow_population_batched};
use effitest::prelude::*;

fn tiny_axes() -> HostileAxes {
    let mut axes = HostileAxes::smoke(40);
    axes.scenario.chip_counts = vec![3];
    axes.scenario.flow.hold.samples = 32;
    axes
}

fn noisy_flow_fixture() -> (GeneratedBenchmark, TimingModel, EffiTestFlow) {
    let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(20), 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    // Noise well above the convergence threshold: epsilon here is
    // max-width/512, so a noise sigma of ~1 delay unit flips probe
    // results near every proven bound.
    let config = FlowConfig {
        tester: TesterModel { noise_sigma: 1.0, quantization_lsb: 0.125, noise_seed: 77 },
        ..FlowConfig::default()
    };
    (bench, model, EffiTestFlow::new(config))
}

#[test]
fn hostile_matrix_json_is_bitwise_thread_invariant() {
    let axes = tiny_axes();
    let serial = hostile_matrix_to_json("smoke", &run_hostile_matrix(&axes, 1).reports);
    for threads in [2, 4] {
        let parallel = hostile_matrix_to_json("smoke", &run_hostile_matrix(&axes, threads).reports);
        assert_eq!(serial, parallel, "hostile matrix drifted at {threads} threads");
    }
}

#[test]
fn noisy_population_batched_matches_per_chip_bitwise() {
    let (bench, model, flow) = noisy_flow_fixture();
    let plan = flow.plan(&bench, &model).expect("plan");
    let td = model.nominal_period();
    let key = |o: &ChipOutcome| {
        (
            o.iterations,
            o.passes,
            o.contradictions,
            o.widenings,
            o.configured.as_ref().map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
            o.ranges.iter().map(|b| (b.lower.to_bits(), b.upper.to_bits())).collect::<Vec<_>>(),
        )
    };
    let base = PopulationConfig { n_chips: 6, base_seed: 900, threads: 1 };
    let per_chip: Vec<_> = run_flow_population(&flow, &plan, td, &base).iter().map(key).collect();
    for threads in [1, 2, 4] {
        let batched: Vec<_> =
            run_flow_population_batched(&flow, &plan, td, &PopulationConfig { threads, ..base })
                .iter()
                .map(key)
                .collect();
        assert_eq!(batched, per_chip, "noisy batched flow drifted at {threads} threads");
    }
}

#[test]
fn noisy_flow_widens_instead_of_panicking_end_to_end() {
    let (bench, model, flow) = noisy_flow_fixture();
    let plan = flow.plan(&bench, &model).expect("plan");
    let td = model.nominal_period();
    let mut widenings = 0_u64;
    for seed in 0..6_u64 {
        let chip = model.sample_chip(300 + seed);
        let outcome = flow.run_chip(&plan, &chip, td).expect("run");
        widenings += outcome.widenings;
        for (p, b) in outcome.ranges.iter().enumerate() {
            assert!(
                b.lower.is_finite() && b.upper.is_finite() && b.lower <= b.upper,
                "seed {seed}: invalid range on path {p}"
            );
        }
    }
    assert!(widenings > 0, "noise this large must contradict proven bounds somewhere");
}

#[test]
fn drifted_chips_run_the_full_flow_without_panics() {
    let (bench, model, flow) = noisy_flow_fixture();
    let plan = flow.plan(&bench, &model).expect("plan");
    let td = model.nominal_period();
    let drift = DriftModel { rate: 0.05, variability: 1.0, seed: 5 };
    for seed in 0..4_u64 {
        let chip = model.sample_chip(700 + seed);
        let aged = drift.aged(&chip, 2.0);
        // Aged delays moved up to ~10% past the plan's assumed windows:
        // the flow must absorb the resulting contradictions, not panic.
        let outcome = flow.run_chip(&plan, &aged, td).expect("run aged");
        assert!(outcome.iterations > 0);
        // Aging only slows paths, so the aged chip's pass can never beat
        // the fresh chip's at the same configuration.
        let fresh = flow.run_chip(&plan, &chip, td).expect("run fresh");
        if outcome.passes {
            assert!(
                fresh.configured.is_some() || !fresh.passes,
                "seed {seed}: inconsistent outcomes"
            );
        }
        let _ = fresh;
    }
}

#[test]
fn ideal_tester_config_is_bit_identical_to_historical_flow() {
    // Adding the tester model must not perturb the noise-free path: a
    // default FlowConfig (ideal tester, strict policy) produces the same
    // outcomes as ever, widening nothing.
    let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(20), 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let plan = flow.plan(&bench, &model).expect("plan");
    let td = model.nominal_period();
    for seed in 0..4_u64 {
        let chip = model.sample_chip(40 + seed);
        let outcome = flow.run_chip(&plan, &chip, td).expect("run");
        assert_eq!(outcome.widenings, 0, "ideal tester must never widen");
    }
}
