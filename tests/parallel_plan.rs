//! Thread-count determinism of the parallel plan pipeline (PR 8).
//!
//! Every serial plan stage now has a threaded form driven by the
//! deterministic parallel-execution utility (`effitest::flow::parallel`):
//! circuit generation on the large tier, the SSTA model build, per-path
//! criticality scoring, the conflict oracle, predicted sigmas, hold-bound
//! sampling, and the prediction engine's per-group factorization. The
//! contract is **bitwise**: results are independent of the worker-thread
//! count and identical to the retained serial references.
//!
//! This test pins that contract end to end — the full plan fingerprint
//! (groups, batches, slot fills, hold bounds, predicted sigmas, epsilon)
//! at threads 1, 4, and 8 against the serial `plan_reference`, across all
//! six paper topologies and a reduced large-tier circuit, plus the
//! upstream generate/model stages on their own references.

use effitest::circuit::{BenchmarkSpec, GeneratedBenchmark, Topology};
use effitest::flow::select::SelectConfig;
use effitest::prelude::*;
use effitest::ssta::TimingModel;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

/// Everything that defines a plan's observable content, in comparable
/// form (hold bounds sorted, floats as bit patterns).
#[allow(clippy::type_complexity)]
fn fingerprint(
    plan: &FlowPlan<'_>,
) -> (
    Vec<(Vec<usize>, Vec<usize>, u64, usize)>,
    Vec<Vec<usize>>,
    Vec<usize>,
    Vec<(usize, u64)>,
    Vec<(usize, u64)>,
    u64,
) {
    let groups = plan
        .groups
        .iter()
        .map(|g| (g.members.clone(), g.selected.clone(), g.threshold.to_bits(), g.n_pcs))
        .collect();
    let mut lambda: Vec<(usize, u64)> = plan.lambda.iter().map(|(p, l)| (p, l.to_bits())).collect();
    lambda.sort_unstable();
    let sigmas = plan.predicted_sigmas.iter().map(|&(p, s)| (p, s.to_bits())).collect();
    (
        groups,
        plan.batches.batches.clone(),
        plan.batches.slot_filled.clone(),
        lambda,
        sigmas,
        plan.epsilon.to_bits(),
    )
}

#[test]
fn plan_is_bitwise_thread_count_independent_on_every_paper_topology() {
    let flow = EffiTestFlow::new(FlowConfig::default());
    for &topology in Topology::all().iter() {
        let spec = BenchmarkSpec::iscas89_s9234().scaled_down(10).with_topology(topology);
        let bench = GeneratedBenchmark::generate(&spec, 1);
        let model = TimingModel::build(&bench, &VariationConfig::paper());
        let reference = fingerprint(&flow.plan_reference(&bench, &model).expect("plan"));
        for threads in THREAD_COUNTS {
            let threaded = fingerprint(&flow.plan_threaded(&bench, &model, threads).expect("plan"));
            assert_eq!(
                threaded,
                reference,
                "plan diverged from the serial reference on {} at {threads} threads",
                topology.name()
            );
        }
    }
}

#[test]
fn plan_is_bitwise_thread_count_independent_on_the_large_tier() {
    let spec = BenchmarkSpec::large(256);
    let flow = EffiTestFlow::new(FlowConfig {
        select: SelectConfig { criticality_fraction: Some(0.93), ..SelectConfig::default() },
        ..FlowConfig::default()
    });
    // The upstream stages have their own serial references: pin them at
    // every thread count before planning on their output.
    let bench = GeneratedBenchmark::generate_large_reference(&spec, 1);
    for threads in THREAD_COUNTS {
        let threaded = GeneratedBenchmark::generate_threaded(&spec, 1, threads);
        assert_eq!(threaded.netlist, bench.netlist, "generation diverged at {threads} threads");
        assert_eq!(threaded.paths, bench.paths, "generated paths diverged at {threads} threads");
        assert_eq!(threaded.short_paths, bench.short_paths);
    }
    let variation = VariationConfig { grid_dim: 4, ..VariationConfig::paper() };
    let model = TimingModel::build_with_buffer_range_reference(&bench, &variation, 0.07, 8);
    for threads in THREAD_COUNTS {
        let threaded =
            TimingModel::build_with_buffer_range_threaded(&bench, &variation, 0.07, 8, threads);
        assert_eq!(threaded, model, "timing model diverged at {threads} threads");
    }
    let reference = fingerprint(&flow.plan_reference(&bench, &model).expect("plan"));
    for threads in THREAD_COUNTS {
        let threaded = fingerprint(&flow.plan_threaded(&bench, &model, threads).expect("plan"));
        assert_eq!(
            threaded, reference,
            "large-tier plan diverged from the serial reference at {threads} threads"
        );
    }
}

#[test]
fn threaded_plan_drives_identical_chip_outcomes() {
    // The plan feeds silicon: identical fingerprints must also mean
    // identical per-chip behavior through the full flow.
    let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(10), 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let reference = flow.plan_reference(&bench, &model).expect("plan");
    let td = model.nominal_period();
    let key = |o: &ChipOutcome| {
        (
            o.iterations,
            o.passes,
            o.configured.as_ref().map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
            o.ranges.iter().map(|b| (b.lower.to_bits(), b.upper.to_bits())).collect::<Vec<_>>(),
        )
    };
    for threads in THREAD_COUNTS {
        let plan = flow.plan_threaded(&bench, &model, threads).expect("plan");
        for seed in 0..3 {
            let chip = model.sample_chip(800 + seed);
            let a = flow.run_chip(&plan, &chip, td).expect("chip");
            let b = flow.run_chip(&reference, &chip, td).expect("chip");
            assert_eq!(key(&a), key(&b), "chip {seed} diverged at {threads} threads");
        }
    }
}
