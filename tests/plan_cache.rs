//! Persistent plan-cache conformance: the cached plan must be **bitwise
//! identical** to a fresh build on every paper topology and on the large
//! tier, and every corrupt-blob shape must fall back to a counted rebuild
//! rather than a panic.

use effitest::flow::cache::{
    decode_plan, encode_plan, plan_cache_key, plan_fingerprint, CacheOutcome, PlanCache,
};
use effitest::flow::select::SelectConfig;
use effitest::prelude::*;
use proptest::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("effitest-plan-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Asserts the full bitwise round-trip contract on one (bench, model,
/// flow) triple and returns the plan fingerprint.
fn assert_round_trip(bench: &GeneratedBenchmark, model: &TimingModel, flow: &EffiTestFlow) -> u64 {
    let plan = flow.plan(bench, model).expect("plan");
    let bytes = encode_plan(&plan);
    let decoded = decode_plan(&bytes, bench, model).expect("decode");
    assert_eq!(bytes, encode_plan(&decoded), "canonical encoding must round-trip byte-for-byte");
    let fp = plan_fingerprint(&plan);
    assert_eq!(fp, plan_fingerprint(&decoded), "plan fingerprints must match");
    // The decoded plan must also *behave* identically: run a chip
    // through both and compare every output bit.
    let chip = model.sample_chip(0xC0FFEE);
    let td = model.nominal_period();
    let fresh = flow.run_chip(&plan, &chip, td).expect("fresh chip");
    let cached = flow.run_chip(&decoded, &chip, td).expect("cached chip");
    assert_eq!(fresh.iterations, cached.iterations);
    assert_eq!(fresh.passes, cached.passes);
    assert_eq!(fresh.configured, cached.configured);
    for (a, b) in fresh.ranges.iter().zip(&cached.ranges) {
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
    }
    fp
}

#[test]
fn cached_plans_are_bitwise_identical_on_every_paper_topology() {
    let flow = EffiTestFlow::new(FlowConfig::default());
    let mut fingerprints = std::collections::HashSet::new();
    for topology in Topology::all() {
        let spec = BenchmarkSpec::iscas89_s13207().scaled_down(16).with_topology(topology);
        let bench = GeneratedBenchmark::generate(&spec, 5);
        let model = TimingModel::build(&bench, &VariationConfig::paper());
        let fp = assert_round_trip(&bench, &model, &flow);
        assert!(fingerprints.insert(fp), "{}: fingerprint collided across topologies", spec.name);
    }
}

#[test]
fn cached_plan_is_bitwise_identical_on_the_large_tier() {
    // The scale tier's configuration: coarse 4x4 variation grid and the
    // criticality cut, as in the scale/plan benches.
    let bench = GeneratedBenchmark::generate(&BenchmarkSpec::large(256), 7);
    let model =
        TimingModel::build(&bench, &VariationConfig { grid_dim: 4, ..VariationConfig::paper() });
    let flow = EffiTestFlow::new(FlowConfig {
        select: SelectConfig { criticality_fraction: Some(0.93), ..SelectConfig::default() },
        ..FlowConfig::default()
    });
    assert_round_trip(&bench, &model, &flow);
}

#[test]
fn disk_cache_hit_reproduces_the_fresh_fingerprint() {
    let spec = BenchmarkSpec::iscas89_s9234().scaled_down(16);
    let bench = GeneratedBenchmark::generate(&spec, 11);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let dir = temp_dir("hit");

    let mut cold = PlanCache::new(&dir);
    let (fresh, outcome) = cold.load_or_build(&flow, &bench, &model).expect("build");
    assert_eq!(outcome, CacheOutcome::Miss);

    // A second cache instance models a process restart.
    let mut warm = PlanCache::new(&dir);
    let (cached, outcome) = warm.load_or_build(&flow, &bench, &model).expect("load");
    assert_eq!(outcome, CacheOutcome::Hit);
    assert_eq!(warm.stats().hits, 1);
    assert_eq!(plan_fingerprint(&fresh), plan_fingerprint(&cached));
    assert_eq!(encode_plan(&fresh), encode_plan(&cached));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_corruption_shape_rebuilds_with_a_counted_incident() {
    let spec = BenchmarkSpec::iscas89_s9234().scaled_down(16);
    let bench = GeneratedBenchmark::generate(&spec, 2);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let dir = temp_dir("corrupt");
    let mut cache = PlanCache::new(&dir);
    let key = plan_cache_key(&bench, &model, flow.config());
    let (fresh, _) = cache.load_or_build(&flow, &bench, &model).expect("seed");
    let fp = plan_fingerprint(&fresh);
    let path = cache.path_for(key);
    let good = std::fs::read(&path).expect("stored blob");

    // Truncation at several cut points, a flipped payload byte, a wrong
    // version tag, and garbage: all must rebuild, count, and re-store.
    let mut mutants: Vec<Vec<u8>> = vec![
        good[..8].to_vec(),
        good[..good.len() / 3].to_vec(),
        good[..good.len() - 1].to_vec(),
        b"NOTAPLAN".to_vec(),
        vec![],
    ];
    let mut flipped = good.clone();
    let mid = 24 + (flipped.len() - 32) / 2;
    flipped[mid] ^= 0x01;
    mutants.push(flipped);
    let mut skewed = good.clone();
    skewed[4] = skewed[4].wrapping_add(3);
    mutants.push(skewed);

    for (i, mutant) in mutants.iter().enumerate() {
        std::fs::write(&path, mutant).expect("write mutant");
        let (plan, outcome) = cache.load_or_build(&flow, &bench, &model).expect("rebuild");
        assert!(
            matches!(outcome, CacheOutcome::Rebuilt(_)),
            "mutant {i}: expected a counted rebuild, got {outcome:?}"
        );
        assert_eq!(plan_fingerprint(&plan), fp, "mutant {i}: rebuilt plan diverged");
        // The rebuild re-stored a good blob: the next load is a hit.
        let (_, outcome) = cache.load_or_build(&flow, &bench, &model).expect("hit");
        assert_eq!(outcome, CacheOutcome::Hit, "mutant {i}: re-store failed");
    }
    let stats = cache.stats();
    assert_eq!(
        stats.corrupt + stats.version_skew + stats.key_mismatch,
        mutants.len() as u64,
        "every mutant must be counted exactly once: {stats:?}"
    );
    assert_eq!(stats.version_skew, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_keys_change_with_any_plan_input() {
    let spec = BenchmarkSpec::iscas89_s9234().scaled_down(16);
    let bench = GeneratedBenchmark::generate(&spec, 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let config = FlowConfig::default();
    let key = plan_cache_key(&bench, &model, &config);

    // Netlist content (different seed).
    let bench2 = GeneratedBenchmark::generate(&spec, 2);
    let model2 = TimingModel::build(&bench2, &VariationConfig::paper());
    assert_ne!(key, plan_cache_key(&bench2, &model2, &config));

    // Model parameters (different variation structure).
    let model3 = TimingModel::build(
        &bench,
        &VariationConfig { local_sigma: 0.123, ..VariationConfig::paper() },
    );
    assert_ne!(key, plan_cache_key(&bench, &model3, &config));

    // Flow configuration (a flipped bool, an Option toggle, a float).
    for other in [
        FlowConfig { slot_fill: !config.slot_fill, ..config.clone() },
        FlowConfig {
            select: SelectConfig { criticality_fraction: Some(0.0), ..SelectConfig::default() },
            ..config.clone()
        },
        FlowConfig { bound_sigma: config.bound_sigma + 0.5, ..config.clone() },
        FlowConfig {
            tester: TesterModel { noise_sigma: 0.1, quantization_lsb: 0.0, noise_seed: 1 },
            ..config.clone()
        },
    ] {
        assert_ne!(key, plan_cache_key(&bench, &model, &other));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random spec/seed: encode -> decode -> encode is the identity on
    /// bytes and decisions (the integration-level mirror of the
    /// per-module codec unit tests).
    #[test]
    fn plan_codec_round_trips_on_random_specs(
        (which, scale, seed) in (0..4_usize, 12..25_usize, 0..1000_u64)
    ) {
        let base = match which {
            0 => BenchmarkSpec::iscas89_s9234(),
            1 => BenchmarkSpec::iscas89_s13207(),
            2 => BenchmarkSpec::iscas89_s15850(),
            _ => BenchmarkSpec::tau13_usb_funct(),
        };
        let bench = GeneratedBenchmark::generate(&base.scaled_down(scale), seed);
        let model = TimingModel::build(&bench, &VariationConfig::paper());
        let flow = EffiTestFlow::new(FlowConfig::default());
        let plan = flow.plan(&bench, &model).expect("plan");
        let bytes = encode_plan(&plan);
        let decoded = decode_plan(&bytes, &bench, &model).expect("decode");
        prop_assert_eq!(&bytes, &encode_plan(&decoded));
        prop_assert_eq!(plan_fingerprint(&plan), plan_fingerprint(&decoded));
    }
}
