//! Thread-count determinism of the population engine and the experiment
//! drivers built on it.
//!
//! The CI workflow runs this suite at `EFFITEST_THREADS=1` and
//! `EFFITEST_THREADS=4`: `env_threads_match_the_serial_reference` reads
//! the variable and compares against a pinned serial run, so each matrix
//! leg genuinely exercises a different worker count. The remaining tests
//! pin explicit thread counts so the guarantee also holds regardless of
//! the environment.

use effitest::flow::experiments::{table1_row, ExperimentConfig, Table1Row};
use effitest::flow::population::{
    run_flow_population, run_flow_population_batched, run_population, run_population_scratch,
    PopulationConfig,
};
use effitest::prelude::*;

fn quick_config(threads: usize) -> ExperimentConfig {
    let mut c =
        ExperimentConfig { n_chips: 10, baseline_chips: 2, threads, ..ExperimentConfig::default() };
    c.flow.hold.samples = 32;
    c
}

/// Everything in a `Table1Row` except the wall-clock columns, bitwise.
fn deterministic_fields(r: &Table1Row) -> (String, [usize; 5], [u64; 6]) {
    (
        r.name.clone(),
        [r.ns, r.ng, r.nb, r.np, r.npt],
        [
            r.ta.to_bits(),
            r.tv.to_bits(),
            r.ta_prime.to_bits(),
            r.tv_prime.to_bits(),
            r.ra.to_bits(),
            r.rv.to_bits(),
        ],
    )
}

#[test]
fn env_threads_match_the_serial_reference() {
    // Thread count straight from EFFITEST_THREADS (the CI matrix sets 1
    // and 4); chip counts pinned so the reference run stays comparable.
    let threads = ExperimentConfig::from_env().threads;
    let env_driven = quick_config(threads);
    let spec = BenchmarkSpec::iscas89_s9234().scaled_down(10);
    assert_eq!(
        deterministic_fields(&table1_row(&spec, &env_driven)),
        deterministic_fields(&table1_row(&spec, &quick_config(1))),
        "EFFITEST_THREADS={threads} drifted from the serial reference"
    );
}

#[test]
fn parallel_table1_rows_match_serial_for_two_circuits() {
    let specs = [
        BenchmarkSpec::iscas89_s9234().scaled_down(10),
        BenchmarkSpec::iscas89_s13207().scaled_down(8),
    ];
    for spec in &specs {
        let serial = table1_row(spec, &quick_config(1));
        for threads in [2, 4] {
            let parallel = table1_row(spec, &quick_config(threads));
            assert_eq!(
                deterministic_fields(&parallel),
                deterministic_fields(&serial),
                "{}: Table 1 row drifted at {threads} threads",
                spec.name
            );
        }
    }
}

#[test]
fn plan_is_built_once_and_shared_across_chips_and_threads() {
    let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(10), 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    // ONE plan; every run below borrows it immutably — the borrow checker
    // itself guarantees no per-chip rebuild or mutation can happen.
    let plan = flow.plan(&bench, &model).expect("plan");
    let td = model.nominal_period();
    // `ranges`/`measured` are the plan-level `Predictor`'s output (the
    // precomputed-gain prediction engine), covered bitwise on purpose.
    let key = |o: &ChipOutcome| {
        (
            o.iterations,
            o.passes,
            o.ranges.iter().map(|b| (b.lower.to_bits(), b.upper.to_bits())).collect::<Vec<_>>(),
            o.measured.clone(),
        )
    };

    let base = PopulationConfig { n_chips: 16, base_seed: 1000, threads: 1 };
    let serial: Vec<_> = run_flow_population(&flow, &plan, td, &base).iter().map(key).collect();
    for threads in [2, 4] {
        let parallel: Vec<_> =
            run_flow_population(&flow, &plan, td, &PopulationConfig { threads, ..base })
                .iter()
                .map(key)
                .collect();
        assert_eq!(parallel, serial, "shared-plan outcomes drifted at {threads} threads");
    }

    // And the shared plan gives the same answers as a fresh plan per chip
    // (the pre-refactor behavior): the plan really is chip-independent.
    for (k, expected) in serial.iter().enumerate().take(4) {
        let fresh = flow.plan(&bench, &model).expect("plan");
        let chip = model.sample_chip(base.chip_seed(k));
        let outcome = flow.run_chip(&fresh, &chip, td).expect("matched chip");
        assert_eq!(&key(&outcome), expected, "fresh plan disagrees on chip {k}");
    }
}

#[test]
fn per_thread_workspaces_preserve_bitwise_determinism() {
    // The warm-started solver workspaces live one-per-worker-thread and
    // are reused across every chip a worker claims. Results must not
    // depend on which chips shared a workspace: compare a serial run (one
    // workspace for all chips), parallel runs (one per worker), and a
    // fresh-workspace-per-chip run, all bitwise.
    let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(10), 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let plan = flow.plan(&bench, &model).expect("plan");
    let td = model.nominal_period();
    // The predicted ranges and measured flags come out of the plan-level
    // `Predictor` through the per-worker `PredictWorkspace`: asserting
    // them bitwise is what keeps the prediction engine inside the
    // thread-count-determinism contract.
    let key = |o: &ChipOutcome| {
        (
            o.iterations,
            o.passes,
            o.configured.clone().map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
            o.ranges.iter().map(|b| (b.lower.to_bits(), b.upper.to_bits())).collect::<Vec<_>>(),
            o.measured.clone(),
        )
    };
    let run = |threads: usize| -> Vec<_> {
        let pop = PopulationConfig { n_chips: 12, base_seed: 2500, threads };
        run_population_scratch(&model, &pop, FlowWorkspace::new, |ws, _k, chip| {
            key(&flow.run_chip_with(ws, &plan, chip, td).expect("matched chip"))
        })
    };
    let serial = run(1);
    for threads in [2, 4] {
        assert_eq!(run(threads), serial, "per-thread workspaces drifted at {threads} threads");
    }
    // Fresh workspace per chip: the reuse itself must be observationally
    // invisible.
    let pop = PopulationConfig { n_chips: 12, base_seed: 2500, threads: 1 };
    let fresh: Vec<_> = run_population(&model, &pop, |_k, chip| {
        key(&flow.run_chip(&plan, chip, td).expect("matched chip"))
    });
    assert_eq!(fresh, serial, "workspace reuse changed per-chip outcomes");
}

/// Everything observable about a `ChipOutcome`, bitwise (wall-clock
/// fields excluded).
fn outcome_key(o: &ChipOutcome) -> impl PartialEq + std::fmt::Debug {
    (
        o.iterations,
        o.passes,
        o.contradictions,
        o.configured.clone().map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
        o.ranges.iter().map(|b| (b.lower.to_bits(), b.upper.to_bits())).collect::<Vec<_>>(),
        o.measured.clone(),
    )
}

#[test]
fn both_engines_survive_degenerate_population_shapes() {
    // n_chips == 0, n_chips == 1, and threads far above n_chips must not
    // panic in either engine, and the batched engine must stay bitwise
    // identical to the per-chip engine everywhere.
    let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(20), 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let plan = flow.plan(&bench, &model).expect("plan");
    let td = model.nominal_period();
    for n_chips in [0, 1, 3] {
        let serial = PopulationConfig { n_chips, base_seed: 4400, threads: 1 };
        let reference: Vec<_> =
            run_flow_population(&flow, &plan, td, &serial).iter().map(outcome_key).collect();
        assert_eq!(reference.len(), n_chips);
        for threads in [1, 2, 16] {
            let pop = PopulationConfig { threads, ..serial };
            let per_chip: Vec<_> =
                run_flow_population(&flow, &plan, td, &pop).iter().map(outcome_key).collect();
            assert_eq!(per_chip, reference, "per-chip engine drifted at {threads} threads");
            let batched: Vec<_> = run_flow_population_batched(&flow, &plan, td, &pop)
                .iter()
                .map(outcome_key)
                .collect();
            assert_eq!(
                batched, reference,
                "batched engine drifted at {n_chips} chips, {threads} threads"
            );
        }
    }
}

#[test]
fn batched_engine_matches_per_chip_across_the_scenario_matrix() {
    // The full 24-cell smoke matrix (6 topologies x 4 variation profiles):
    // on every cell the batched population engine must reproduce the
    // per-chip engine bitwise, at 1 and 4 worker threads.
    let mut axes = ScenarioAxes::smoke(40);
    axes.chip_counts = vec![5];
    axes.flow.hold.samples = 32;
    let cells = axes.cells();
    assert_eq!(cells.len(), 24, "smoke matrix is expected to span 24 cells");
    for cell in &cells {
        let bench = GeneratedBenchmark::generate(&cell.spec, cell.seed);
        let model = TimingModel::build_with_buffer_range(
            &bench,
            &cell.variation.config(),
            cell.tuning_fraction,
            TimingModel::BUFFER_STEPS,
        );
        let flow = EffiTestFlow::new(cell.flow.clone());
        let plan = flow.plan(&bench, &model).expect("plan");
        let td = model.nominal_period();
        let serial = PopulationConfig { n_chips: cell.n_chips, base_seed: cell.seed, threads: 1 };
        let reference: Vec<_> =
            run_flow_population(&flow, &plan, td, &serial).iter().map(outcome_key).collect();
        for threads in [1, 4] {
            let pop = PopulationConfig { threads, ..serial };
            let batched: Vec<_> = run_flow_population_batched(&flow, &plan, td, &pop)
                .iter()
                .map(outcome_key)
                .collect();
            assert_eq!(batched, reference, "cell {} drifted at {threads} threads", cell.id());
        }
    }
}

#[test]
fn engine_respects_chip_order_under_oversubscription() {
    let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(20), 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let pop = PopulationConfig { n_chips: 40, base_seed: 7, threads: 16 };
    let seeds: Vec<u64> = run_population(&model, &pop, |_k, chip| chip.seed());
    let expected: Vec<u64> = (0..40).map(|k| pop.chip_seed(k)).collect();
    assert_eq!(seeds, expected);
}
