//! Statistical calibration and differential conformance of the
//! plan-level prediction engine.
//!
//! Three layers of guarantees over `Predictor` (paper eqs. 4–5 with the
//! conditioning gains precomputed per flow plan):
//!
//! 1. **Calibration** — across *every* topology x variation-profile cell
//!    of the scenario axes (PR 4), predicted `mu' +- 3 sigma'` ranges
//!    cover at least 93% of the unmeasured true delays, and upper-bound
//!    conditioning shifts predicted means up relative to center
//!    conditioning (the paper's conservatism argument, §3.4). Seeds are
//!    pinned; per-cell thresholds are the documented constants below.
//! 2. **Differential conformance** — on the full 24-cell scenario matrix,
//!    the precomputed engine's output is bitwise identical to the legacy
//!    per-chip conditioning path (`predict_ranges`, which rebuilds and
//!    refactorizes every group Gaussian per chip), reached both directly
//!    and through `EffiTestFlow::test_and_predict_reference`.
//! 3. **Thread invariance** — predicted ranges and measured flags are
//!    bitwise identical at 1 and 4 worker threads through the population
//!    engine.

use std::collections::HashMap;

use effitest::flow::population::{run_population_scratch, PopulationConfig};
use effitest::flow::predict::predict_ranges;
use effitest::flow::select::{all_selected, select_paths, SelectConfig};
use effitest::prelude::*;

/// Benchmark-generation seed for every calibration cell.
const GEN_SEED: u64 = 1;
/// Chip-sampling seeds per cell (pinned; chip `k` uses `BASE + k`).
const CHIP_SEED_BASE: u64 = 4_000;
const CHIPS_PER_CELL: u64 = 8;
/// Measured-window width around the true delay (same regime as the
/// aligned test's converged ranges on these circuits). Kept tight: the
/// conservative upper-bound conditioning shifts means up by O(eps), so a
/// wide window trades low-side coverage for conservatism.
const MEASURE_EPS: f64 = 0.25;

/// Aggregate coverage floor over the whole matrix: the paper's 93% bar.
/// (The pinned seeds measure ~98.6%.)
const AGGREGATE_COVERAGE_FLOOR: f64 = 0.93;

/// Optimistic-miss ceiling per cell: the fraction of unmeasured paths
/// whose true delay lands *above* the predicted upper bound — the unsafe
/// direction for setup timing. Conservative (low-side) misses are the
/// method working as specified; optimistic ones must stay rare.
const OPTIMISTIC_MISS_CEILING: f64 = 0.04;

/// Coverage floor per calibration cell: the fraction of unmeasured true
/// delays inside their predicted range.
///
/// Default: the paper's 93% bar, which every cell but three clears
/// outright with the pinned seeds. The documented exceptions are the
/// balanced H-tree cells: that topology generates structurally duplicated
/// paths whose model correlation is exactly 1, so conditioning on a
/// measured peer collapses `sigma'` to ~0 and the conservative
/// *upper-bound* observation (paper §3.4) parks the zero-width prediction
/// `eps/2` above the true delay — a low-side, conservative miss by
/// construction, not an estimation error. Those cells get reduced floors
/// (measured: spatial 0.92, independent 0.80, tail 0.93 at these seeds)
/// and their misses are separately required to be conservative via
/// [`OPTIMISTIC_MISS_CEILING`].
fn coverage_floor(topology: Topology, variation: VariationProfile) -> f64 {
    match (topology, variation) {
        (Topology::BalancedHTree, VariationProfile::Independent) => 0.75,
        (
            Topology::BalancedHTree,
            VariationProfile::SpatiallyCorrelated | VariationProfile::HighSigmaTail,
        ) => 0.88,
        _ => 0.93,
    }
}

/// Conservatism floor per cell: the fraction of unmeasured paths whose
/// upper-bound-conditioned mean is at least the center-conditioned mean.
/// Positive correlations dominate every topology, so (almost) all means
/// must shift up; 0.9 leaves room for near-zero-correlation stragglers.
fn conservatism_floor(_topology: Topology, _variation: VariationProfile) -> f64 {
    0.9
}

/// Measured bounds: a tight window around the chip's true delay.
fn measure(chip: &ChipInstance, paths: &[usize], eps: f64) -> HashMap<usize, DelayBounds> {
    paths
        .iter()
        .map(|&p| {
            let d = chip.setup_delay(p);
            (p, DelayBounds::new(d - eps / 2.0, d + eps / 2.0))
        })
        .collect()
}

fn range_bits(r: &effitest::flow::predict::PredictedRanges) -> Vec<(u64, u64)> {
    r.ranges.iter().map(|b| (b.lower.to_bits(), b.upper.to_bits())).collect()
}

/// One calibration fixture per (topology, variation) cell: generated
/// benchmark, model, groups, and selected representatives.
fn cell_fixture(
    topology: Topology,
    variation: VariationProfile,
) -> (TimingModel, Vec<effitest::flow::select::PathGroup>, Vec<usize>) {
    let spec = BenchmarkSpec::iscas89_s13207().scaled_down(12).with_topology(topology);
    let bench = GeneratedBenchmark::generate(&spec, GEN_SEED);
    let model = TimingModel::build(&bench, &variation.config());
    let groups = select_paths(&model, &SelectConfig::default());
    let selected = all_selected(&groups);
    (model, groups, selected)
}

#[test]
fn predicted_ranges_cover_unmeasured_truth_on_every_topology_and_variation() {
    let mut exercised = 0_usize;
    let mut agg_covered = 0_u64;
    let mut agg_total = 0_u64;
    for topology in Topology::all() {
        for variation in VariationProfile::all() {
            let (model, groups, selected) = cell_fixture(topology, variation);
            let predictor = Predictor::new(&model, &groups, &selected, 3.0);
            assert_eq!(predictor.fallback_count(), 0, "{topology:?}/{variation:?} fell back");

            let mut covered = 0_u64;
            let mut optimistic = 0_u64;
            let mut total = 0_u64;
            for k in 0..CHIPS_PER_CELL {
                let chip = model.sample_chip(CHIP_SEED_BASE + k);
                let tested = measure(&chip, &selected, MEASURE_EPS);
                let predicted = predictor.predict(&tested);
                for p in 0..model.path_count() {
                    if tested.contains_key(&p) {
                        continue;
                    }
                    total += 1;
                    let d = chip.setup_delay(p);
                    if predicted.ranges[p].lower <= d && d <= predicted.ranges[p].upper {
                        covered += 1;
                    } else if d > predicted.ranges[p].upper {
                        optimistic += 1;
                    }
                }
            }
            if total == 0 {
                // Near-independent regimes can select every path (nothing
                // left to predict); coverage is vacuous there.
                assert_eq!(selected.len(), model.path_count());
                continue;
            }
            exercised += 1;
            agg_covered += covered;
            agg_total += total;
            let rate = covered as f64 / total as f64;
            let floor = coverage_floor(topology, variation);
            assert!(
                rate >= floor,
                "{topology:?}/{variation:?}: coverage {rate:.3} below {floor} \
                 ({covered}/{total})"
            );
            // Misses must err conservative: the chip being *slower* than
            // the predicted upper bound is the unsafe direction.
            assert!(
                optimistic as f64 <= total as f64 * OPTIMISTIC_MISS_CEILING,
                "{topology:?}/{variation:?}: {optimistic}/{total} optimistic misses"
            );
        }
    }
    // The sweep must be a real statistical test, not a wall of vacuous
    // cells: most regimes leave unmeasured paths to predict.
    assert!(exercised >= 12, "only {exercised} cells exercised coverage");
    let aggregate = agg_covered as f64 / agg_total as f64;
    assert!(
        aggregate >= AGGREGATE_COVERAGE_FLOOR,
        "matrix-wide coverage {aggregate:.3} below {AGGREGATE_COVERAGE_FLOOR} \
         ({agg_covered}/{agg_total})"
    );
}

#[test]
fn upper_bound_conditioning_is_conservative_on_every_topology_and_variation() {
    for topology in Topology::all() {
        for variation in VariationProfile::all() {
            let (model, groups, selected) = cell_fixture(topology, variation);
            let predictor = Predictor::new(&model, &groups, &selected, 3.0);
            let chip = model.sample_chip(CHIP_SEED_BASE + 13);
            let eps = 2.0;
            let tested = measure(&chip, &selected, eps);
            let predicted_hi = predictor.predict(&tested);
            // Zero-width windows at the interval centers: the engine then
            // conditions on the centers instead of the upper bounds.
            let tested_center: HashMap<usize, DelayBounds> = tested
                .iter()
                .map(|(&p, b)| {
                    let c = b.center();
                    (p, DelayBounds::new(c, c))
                })
                .collect();
            let predicted_center = predictor.predict(&tested_center);
            let mut higher = 0_u64;
            let mut comparable = 0_u64;
            for p in 0..model.path_count() {
                if tested.contains_key(&p) {
                    continue;
                }
                comparable += 1;
                if predicted_hi.ranges[p].center() >= predicted_center.ranges[p].center() - 1e-9 {
                    higher += 1;
                }
            }
            let floor = conservatism_floor(topology, variation);
            assert!(
                higher as f64 >= comparable as f64 * floor,
                "{topology:?}/{variation:?}: only {higher}/{comparable} means shifted up"
            );
        }
    }
}

#[test]
fn predictor_is_bitwise_identical_to_legacy_on_the_full_scenario_matrix() {
    // Every cell of the (topology x variation) matrix, through the real
    // flow: aligned test, then engine vs from-scratch conditioning on the
    // same measured bounds — bit for bit.
    let mut axes = ScenarioAxes::smoke(40);
    axes.chip_counts = vec![2];
    axes.flow.hold.samples = 32;
    let cells = axes.cells();
    assert_eq!(cells.len(), 24, "scenario matrix shape changed");
    for cell in &cells {
        let bench = GeneratedBenchmark::generate(&cell.spec, cell.seed);
        let model = TimingModel::build_with_buffer_range(
            &bench,
            &cell.variation.config(),
            cell.tuning_fraction,
            TimingModel::BUFFER_STEPS,
        );
        let flow = EffiTestFlow::new(cell.flow.clone());
        let plan = flow.plan(&bench, &model).expect("generated benchmarks have paths");
        for k in 0..2_u64 {
            let chip = model.sample_chip(cell.seed.wrapping_mul(0x1000).wrapping_add(1 + k));
            let (engine, aligned) = flow.test_and_predict(&plan, &chip);
            let legacy =
                predict_ranges(&model, &plan.groups, &aligned.bounds, flow.config().bound_sigma);
            assert_eq!(
                range_bits(&engine),
                range_bits(&legacy),
                "{}: engine diverged from legacy conditioning on chip {k}",
                cell.id()
            );
            assert_eq!(engine.measured, legacy.measured, "{}: measured flags", cell.id());
            assert_eq!(engine.fallbacks, legacy.fallbacks, "{}: fallback count", cell.id());
        }
    }
}

#[test]
fn reference_entry_point_matches_the_engine_end_to_end() {
    let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(10), 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let plan = flow.plan(&bench, &model).expect("plan");
    for seed in 0..4 {
        let chip = model.sample_chip(600 + seed);
        let (engine, aligned) = flow.test_and_predict(&plan, &chip);
        let (reference, aligned_ref) = flow.test_and_predict_reference(&plan, &chip);
        assert_eq!(aligned.iterations, aligned_ref.iterations);
        assert_eq!(range_bits(&engine), range_bits(&reference), "chip {seed} drifted");
        assert_eq!(engine.measured, reference.measured);
    }
}

#[test]
fn predicted_ranges_are_bitwise_thread_invariant() {
    // The prediction engine rides the population engine's per-worker
    // workspaces: predicted ranges and measured flags must be bitwise
    // identical at any worker count.
    let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iscas89_s9234().scaled_down(10), 1);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    let flow = EffiTestFlow::new(FlowConfig::default());
    let plan = flow.plan(&bench, &model).expect("plan");
    type ChipKey = (Vec<(u64, u64)>, Vec<bool>);
    let run = |threads: usize| -> Vec<ChipKey> {
        let pop = PopulationConfig { n_chips: 8, base_seed: 5_500, threads };
        run_population_scratch(&model, &pop, FlowWorkspace::new, |ws, _k, chip| {
            let (predicted, _aligned) = flow.test_and_predict_with(ws, &plan, chip);
            (range_bits(&predicted), predicted.measured)
        })
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel, "predicted ranges drifted with the thread count");
}

/// Measured bounds under injected tester error: the window keeps its
/// width but its center is displaced by a deterministic seeded Gaussian —
/// the windows a noisy, quantized tester actually converges to.
fn measure_noisy(
    chip: &ChipInstance,
    paths: &[usize],
    eps: f64,
    sigma: f64,
    seed: u64,
) -> HashMap<usize, DelayBounds> {
    use effitest::ssta::{hash_normal, mix_stream};
    let per_chip = mix_stream(seed, chip.seed());
    paths
        .iter()
        .map(|&p| {
            let noise = sigma * hash_normal(mix_stream(per_chip, p as u64));
            let d = chip.setup_delay(p) + noise;
            (p, DelayBounds::new(d - eps / 2.0, d + eps / 2.0))
        })
        .collect()
}

/// Calibration under injected tester noise: matrix-wide coverage floors
/// and optimistic-miss ceilings per noise level (sigma in units of
/// `MEASURE_EPS`). Measured at the pinned seeds: 98.7% / 0.6% at 1x,
/// 98.7% / 0.8% at 4x, 98.5% / 0.9% at 8x, 97.0% / 1.9% at 16x — the
/// statistical prediction degrades *gracefully* because the predicted
/// 3 sigma' ranges dwarf the per-window displacement until the noise
/// reaches the path-sigma scale, and misses keep erring conservative
/// (low side) far below the clean-tester OPTIMISTIC_MISS_CEILING even
/// when they do appear. Floors carry slack for cross-platform float
/// differences in the noise stream's tails.
#[test]
fn noisy_measurements_degrade_coverage_gracefully() {
    const NOISE_SEED: u64 = 0xBAD_5EED;
    // (noise sigma / MEASURE_EPS, aggregate coverage floor, optimistic
    // miss ceiling)
    const LEVELS: [(f64, f64, f64); 4] =
        [(1.0, 0.97, 0.02), (4.0, 0.97, 0.02), (8.0, 0.96, 0.02), (16.0, 0.94, 0.04)];
    let mut cov = [0_u64; LEVELS.len()];
    let mut opt = [0_u64; LEVELS.len()];
    let mut tot = [0_u64; LEVELS.len()];
    for topology in Topology::all() {
        for variation in VariationProfile::all() {
            let (model, _groups, selected) = cell_fixture(topology, variation);
            let groups = select_paths(&model, &SelectConfig::default());
            let predictor = Predictor::new(&model, &groups, &selected, 3.0);
            for (li, &(noise_rel, _, _)) in LEVELS.iter().enumerate() {
                for k in 0..CHIPS_PER_CELL {
                    let chip = model.sample_chip(CHIP_SEED_BASE + k);
                    let tested = measure_noisy(
                        &chip,
                        &selected,
                        MEASURE_EPS,
                        noise_rel * MEASURE_EPS,
                        NOISE_SEED,
                    );
                    let predicted = predictor.predict(&tested);
                    for p in 0..model.path_count() {
                        if tested.contains_key(&p) {
                            continue;
                        }
                        tot[li] += 1;
                        let d = chip.setup_delay(p);
                        if predicted.ranges[p].lower <= d && d <= predicted.ranges[p].upper {
                            cov[li] += 1;
                        } else if d > predicted.ranges[p].upper {
                            opt[li] += 1;
                        }
                    }
                }
            }
        }
    }
    for (li, &(noise_rel, floor, ceiling)) in LEVELS.iter().enumerate() {
        let coverage = cov[li] as f64 / tot[li] as f64;
        let miss = opt[li] as f64 / tot[li] as f64;
        assert!(
            coverage >= floor,
            "noise {noise_rel}x: coverage {coverage:.4} below {floor} ({}/{})",
            cov[li],
            tot[li]
        );
        assert!(
            miss <= ceiling,
            "noise {noise_rel}x: optimistic miss rate {miss:.4} above {ceiling}"
        );
        // Even the noisiest level must clear the paper's aggregate bar.
        assert!(coverage >= AGGREGATE_COVERAGE_FLOOR);
    }
}
