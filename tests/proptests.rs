//! Cross-crate property tests: generator validity, tester bracketing,
//! batching conflict-freedom, and configuration soundness under random
//! seeds and scales.

use effitest::flow::aligned_test::{run_aligned_test, AlignedTestConfig};
use effitest::flow::batch::{build_batches, ConflictOracle};
use effitest::flow::hold::HoldBounds;
use effitest::prelude::*;
use effitest::tester::chip_passes;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = (BenchmarkSpec, u64)> {
    (0..4_usize, 8..25_usize, 0..1000_u64).prop_map(|(which, scale, seed)| {
        let base = match which {
            0 => BenchmarkSpec::iscas89_s9234(),
            1 => BenchmarkSpec::iscas89_s13207(),
            2 => BenchmarkSpec::iscas89_s15850(),
            _ => BenchmarkSpec::tau13_usb_funct(),
        };
        (base.scaled_down(scale), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_benchmarks_are_always_valid((spec, seed) in spec_strategy()) {
        let bench = GeneratedBenchmark::generate(&spec, seed);
        prop_assert!(bench.netlist.validate().is_ok());
        prop_assert!(bench.paths.validate(&bench.netlist).is_ok());
        let (ns, ng, nb, np) = bench.stats();
        prop_assert_eq!(ns, spec.ns);
        prop_assert_eq!(ng, spec.ng);
        prop_assert_eq!(nb, spec.nb);
        prop_assert_eq!(np, spec.np);
        // Every required path touches a buffered flip-flop.
        let hubs: std::collections::HashSet<_> =
            bench.netlist.buffered_flip_flops().into_iter().collect();
        for p in bench.paths.iter() {
            prop_assert!(hubs.contains(&p.source) || hubs.contains(&p.sink));
        }
        // Short paths share endpoints with their max paths and are shorter.
        for (idx, sp) in bench.short_paths.iter().enumerate() {
            if let Some(sp) = sp {
                let mp = bench.paths.path(PathId::new(idx as u32));
                prop_assert_eq!(sp.source, mp.source);
                prop_assert_eq!(sp.sink, mp.sink);
                prop_assert!(sp.len() < mp.len());
            }
        }
    }

    #[test]
    fn aligned_test_brackets_in_window_delays((spec, seed) in spec_strategy()) {
        let bench = GeneratedBenchmark::generate(&spec, seed);
        let model = TimingModel::build(&bench, &VariationConfig::paper());
        let flow = EffiTestFlow::new(FlowConfig::default());
        let prepared = flow.plan(&bench, &model).expect("prepare");
        let chip = model.sample_chip(seed ^ 0xA5A5);
        let mut tester = VirtualTester::new(&chip);
        let result = run_aligned_test(
            &model,
            &mut tester,
            &prepared.batches.batches,
            &HoldBounds::default(),
            &AlignedTestConfig { epsilon: prepared.epsilon, ..AlignedTestConfig::default() },
        );
        for (&p, b) in &result.bounds {
            prop_assert!(b.lower <= b.upper + 1e-12);
            prop_assert!(b.converged(prepared.epsilon + 1e-9));
            let truth = chip.setup_delay(p);
            let init = DelayBounds::from_gaussian(model.path_mean(p), model.path_sigma(p), 3.0);
            if truth >= init.lower && truth <= init.upper {
                prop_assert!(
                    b.lower - 1e-9 <= truth && truth <= b.upper + 1e-9,
                    "bounds [{}, {}] miss {}", b.lower, b.upper, truth
                );
            }
        }
    }

    #[test]
    fn batches_never_contain_conflicts((spec, seed) in spec_strategy()) {
        let bench = GeneratedBenchmark::generate(&spec, seed);
        let model = TimingModel::build(&bench, &VariationConfig::paper());
        let all: Vec<usize> = (0..model.path_count()).collect();
        let oracle = ConflictOracle::new(&bench, &all);
        let widths: Vec<f64> = all.iter().map(|&p| model.path_sigma(p)).collect();
        let batches = build_batches(&oracle, &all, Some(&widths));
        let mut seen = vec![false; all.len()];
        for batch in &batches {
            for (i, &a) in batch.iter().enumerate() {
                prop_assert!(!seen[a], "path {a} in two batches");
                seen[a] = true;
                for &b in &batch[i + 1..] {
                    prop_assert!(!oracle.conflicts(a, b));
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exact_knowledge_configuration_is_sound((spec, seed) in spec_strategy()) {
        // With exact delay knowledge, a successful configuration must make
        // the chip pass; a refusal must mean even ideal knowledge fails.
        let bench = GeneratedBenchmark::generate(&spec, seed);
        let model = TimingModel::build(&bench, &VariationConfig::paper());
        let buffers = effitest::flow::configure::BufferIndex::new(&model);
        let chip = model.sample_chip(seed ^ 0x1234);
        // A moderately tight period: between median-ish and the chip's own
        // untuned requirement.
        let td = chip.min_period_untuned() * 0.99;
        let ok = effitest::flow::configure::ideal_configure_and_check(
            &model, &buffers, &chip, td,
        );
        if ok {
            // ideal_configure_and_check already verified chip_passes; also
            // confirm the untuned chip genuinely failed at this period, so
            // the buffers did real work.
            let zeros = vec![0.0; chip.path_count()];
            prop_assert!(!chip_passes(&chip, td, &zeros));
        }
    }

    #[test]
    fn chip_sampling_matches_model_sigma((spec, seed) in spec_strategy()) {
        let bench = GeneratedBenchmark::generate(&spec, seed);
        let model = TimingModel::build(&bench, &VariationConfig::paper());
        let n = 300;
        let samples: Vec<f64> =
            (0..n).map(|k| model.sample_chip(seed + k).setup_delay(0)).collect();
        let mean = effitest::linalg::stats::mean(&samples);
        let sd = effitest::linalg::stats::std_dev(&samples);
        let se = model.path_sigma(0) / (n as f64).sqrt();
        prop_assert!((mean - model.path_mean(0)).abs() < 5.0 * se + 1e-9);
        prop_assert!((sd / model.path_sigma(0) - 1.0).abs() < 0.25);
    }
}
