//! Streaming-ingestion conformance: per-chip tuning decisions must be
//! **bitwise identical** no matter the event arrival order, the worker
//! thread count, or how many concurrent circuit revisions share the
//! engine — and identical to the in-order batched flow.

use effitest::flow::population::run_flow_population_batched;
use effitest::prelude::*;
use effitest::testkit::parse_embedded_reports;

fn fixture(scale: usize, seed: u64) -> (GeneratedBenchmark, TimingModel) {
    let spec = BenchmarkSpec::iscas89_s13207().scaled_down(scale);
    let bench = GeneratedBenchmark::generate(&spec, seed);
    let model = TimingModel::build(&bench, &VariationConfig::paper());
    (bench, model)
}

/// Events of one revision's population, derived from the batch flow's
/// measured bounds (chip-major, i.e. the natural in-order stream).
fn revision_events(revision: u64, outcomes: &[ChipOutcome]) -> Vec<MeasurementEvent> {
    let mut events = Vec::new();
    for (k, o) in outcomes.iter().enumerate() {
        for (p, &m) in o.measured.iter().enumerate() {
            if m {
                events.push(MeasurementEvent {
                    revision,
                    chip: k as u64,
                    path: p,
                    lower: o.ranges[p].lower,
                    upper: o.ranges[p].upper,
                });
            }
        }
    }
    events
}

/// Deterministic Fisher-Yates driven by a splitmix64 stream — the tests
/// must not depend on ambient randomness.
fn shuffle(events: &mut [MeasurementEvent], mut state: u64) {
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..events.len()).rev() {
        events.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

/// Runs one engine over `events` and returns its drained decisions.
fn run_engine(
    registrations: &[(u64, &FlowPlan<'_>, f64)],
    events: &[MeasurementEvent],
    threads: usize,
) -> Vec<TuningDecision> {
    let mut engine = ServiceEngine::new(ServiceConfig { threads, ..ServiceConfig::default() });
    for &(revision, plan, td) in registrations {
        engine.register(revision, plan, td).expect("register");
    }
    for &e in events {
        engine.ingest(e).expect("event");
    }
    let decisions = engine.drain();
    assert_eq!(engine.pending_chips(), 0, "every chip must complete");
    decisions
}

fn assert_decisions_bitwise_equal(a: &[TuningDecision], b: &[TuningDecision], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: decision counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!((x.revision, x.chip), (y.revision, y.chip), "{what}: emission order differs");
        assert_eq!(x.contradictions, y.contradictions, "{what}: contradiction counts differ");
        match (&x.buffers, &y.buffers) {
            (Some(p), Some(q)) => {
                assert_eq!(p.len(), q.len());
                for (u, v) in p.iter().zip(q) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{what}: buffer bits differ");
                }
            }
            (None, None) => {}
            other => panic!("{what}: feasibility disagrees: {other:?}"),
        }
    }
}

#[test]
fn shuffled_arrival_matches_in_order_batch_processing_at_every_thread_count() {
    // Two concurrent circuit revisions sharing one engine.
    let (bench_a, model_a) = fixture(16, 3);
    let (bench_b, model_b) = fixture(24, 8);
    let flow = EffiTestFlow::new(FlowConfig::default());
    let plan_a = flow.plan(&bench_a, &model_a).expect("plan a");
    let plan_b = flow.plan(&bench_b, &model_b).expect("plan b");
    let td_a = model_a.nominal_period();
    let td_b = model_b.nominal_period();

    let pop = |seed| PopulationConfig { n_chips: 5, base_seed: seed, threads: 1 };
    let outcomes_a = run_flow_population_batched(&flow, &plan_a, td_a, &pop(41));
    let outcomes_b = run_flow_population_batched(&flow, &plan_b, td_b, &pop(42));

    let mut in_order = revision_events(1, &outcomes_a);
    in_order.extend(revision_events(2, &outcomes_b));
    let registrations = [(1, &plan_a, td_a), (2, &plan_b, td_b)];

    // The reference: in-order arrival, single worker thread.
    let reference = run_engine(&registrations, &in_order, 1);
    assert_eq!(reference.len(), outcomes_a.len() + outcomes_b.len());

    // Every decision must match the batch flow's configuration bitwise.
    for d in &reference {
        let outcome = match d.revision {
            1 => &outcomes_a[d.chip as usize],
            _ => &outcomes_b[d.chip as usize],
        };
        match (&d.buffers, &outcome.configured) {
            (Some(p), Some(q)) => {
                for (u, v) in p.iter().zip(q) {
                    assert_eq!(u.to_bits(), v.to_bits(), "service diverged from batch flow");
                }
            }
            (None, None) => {}
            other => panic!("service/batch feasibility disagrees: {other:?}"),
        }
    }

    // Shuffled arrival at 1 and 4 worker threads: bitwise the same
    // decisions, in the same emission order.
    for threads in [1, 4] {
        for shuffle_seed in [0xBEEF_u64, 0xCAFE, 7] {
            let mut shuffled = in_order.clone();
            shuffle(&mut shuffled, shuffle_seed);
            assert_ne!(shuffled, in_order, "shuffle must actually permute");
            let decisions = run_engine(&registrations, &shuffled, threads);
            assert_decisions_bitwise_equal(
                &decisions,
                &reference,
                &format!("threads={threads} seed={shuffle_seed:#x}"),
            );
        }
    }
}

#[test]
fn interleaved_revisions_drain_in_deterministic_shard_order() {
    let (bench, model) = fixture(20, 5);
    let flow = EffiTestFlow::new(FlowConfig::default());
    let plan = flow.plan(&bench, &model).expect("plan");
    let td = model.nominal_period();
    let outcomes = run_flow_population_batched(
        &flow,
        &plan,
        td,
        &PopulationConfig { n_chips: 4, base_seed: 9, threads: 1 },
    );

    // The same plan registered under two revisions, events interleaved
    // one-by-one: the drain order depends only on (shard, revision, chip).
    let a = revision_events(10, &outcomes);
    let b = revision_events(11, &outcomes);
    let mut interleaved = Vec::with_capacity(a.len() + b.len());
    for (x, y) in a.iter().zip(&b) {
        interleaved.push(*x);
        interleaved.push(*y);
    }
    let registrations = [(10, &plan, td), (11, &plan, td)];
    let first = run_engine(&registrations, &interleaved, 4);

    interleaved.reverse();
    let second = run_engine(&registrations, &interleaved, 1);
    assert_decisions_bitwise_equal(&first, &second, "reversed interleave");

    // Same chips under both revisions: identical buffers per chip.
    for d in &first {
        let outcome = &outcomes[d.chip as usize];
        assert_eq!(d.buffers.is_some(), outcome.configured.is_some());
    }
}

#[test]
fn decision_log_round_trips_through_the_shared_report_parser() {
    let (bench, model) = fixture(24, 2);
    let flow = EffiTestFlow::new(FlowConfig::default());
    let plan = flow.plan(&bench, &model).expect("plan");
    let td = model.nominal_period();
    let outcomes = run_flow_population_batched(
        &flow,
        &plan,
        td,
        &PopulationConfig { n_chips: 3, base_seed: 6, threads: 1 },
    );
    let events = revision_events(1, &outcomes);
    let mut engine = ServiceEngine::new(ServiceConfig::default());
    engine.register(1, &plan, td).expect("register");
    for e in events {
        engine.ingest(e).expect("event");
    }
    let decisions = engine.drain();
    let fingerprint = plan_fingerprint(&plan);

    let json = service_log_to_json(&[(1, fingerprint)], engine.stats(), &decisions);
    let cells = parse_embedded_reports(&json).expect("the emitted log must parse");
    // One head, one plan row, one row per decision — all flat leaves.
    assert_eq!(cells.len(), 2 + decisions.len());
    assert_eq!(cells[0].str("report"), Ok("effitest_service_log"));
    assert_eq!(cells[0].num("decisions"), Ok(decisions.len() as f64));
    assert_eq!(cells[1].str("fingerprint"), Ok(format!("{fingerprint:#018x}").as_str()));
    for (cell, d) in cells[2..].iter().zip(&decisions) {
        assert_eq!(cell.num("revision"), Ok(d.revision as f64));
        assert_eq!(cell.num("chip"), Ok(d.chip as f64));
        let status = cell.str("status").expect("status field");
        match &d.buffers {
            Some(b) => {
                assert_eq!(status, "configured");
                // Shortest round-trip formatting: parsing the space-
                // joined string recovers the exact bits.
                let parsed: Vec<f64> = cell
                    .str("buffers")
                    .expect("buffers field")
                    .split_whitespace()
                    .map(|t| t.parse().expect("buffer token"))
                    .collect();
                assert_eq!(parsed.len(), b.len());
                for (u, v) in parsed.iter().zip(b) {
                    assert_eq!(u.to_bits(), v.to_bits(), "buffer bits survived the log");
                }
            }
            None => assert_eq!(status, "rejected"),
        }
    }
}
