//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the benchmarking API surface the workspace's `bench` crate
//! uses: [`Criterion`] with `bench_function` / `benchmark_group` /
//! `sample_size` / `configure_from_args` / `final_summary`,
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up pass followed by
//! `sample_size` timed samples, reporting min / median / mean wall-clock
//! time per iteration. There are no plots, no statistics beyond that, and
//! no baseline storage; the goal is that `cargo bench` produces useful
//! relative numbers offline and `cargo bench --no-run` gates compilation
//! in CI.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, filter: None, list_only: false }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies command-line arguments (`--bench` is accepted and ignored;
    /// `--list` lists benchmark names; a bare string filters by substring).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--profile-time" => {
                    // `--profile-time` consumes a value; `--bench` is a flag
                    // cargo passes to bench binaries.
                    if arg == "--profile-time" {
                        let _ = args.next();
                    }
                }
                "--list" => self.list_only = true,
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs (times) one benchmark closure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Prints the closing line of a harness run.
    pub fn final_summary(self) {
        if !self.list_only {
            println!("(criterion stand-in: wall-clock timings only, no statistics)");
        }
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if self.list_only {
            println!("{id}: benchmark");
            return;
        }
        if !self.should_run(id) {
            return;
        }
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code under
/// measurement.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting one sample per configured iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: one untimed call.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{id:<50} min {:>12} median {:>12} mean {:>12} ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an identifier from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// A named collection of benchmarks sharing an id prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `routine` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| routine(b, input));
        self
    }

    /// Times a plain closure under this group's prefix.
    pub fn bench_function<R>(&mut self, id: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| routine(b));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, in either the `name/config/targets`
/// form or the positional form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0_u32;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2_u64 + 2)
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("smoke");
        group.bench_with_input(BenchmarkId::new("square", 7_u32), &7_u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }
}
