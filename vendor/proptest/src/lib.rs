//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace's test suites use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`, implemented
//!   for numeric ranges, tuples, [`Just`], [`collection::vec`],
//!   [`option::of`] and [`bool::ANY`];
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`
//!   header) plus [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`]
//!   and [`prop_assume!`];
//! * [`ProptestConfig`] with `with_cases`, capped by the `PROPTEST_CASES`
//!   environment variable so CI can bound runtimes globally.
//!
//! Unlike the real crate there is **no shrinking**: a failing case reports
//! its case number, derivation seed, and the `Debug` rendering of the
//! generated inputs. Generation is fully deterministic — the per-case RNG
//! seed is derived from the test name, the case index, and the optional
//! `PROPTEST_SEED` environment variable — so failures always reproduce.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Runner configuration. Only the `cases` knob is implemented.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of test cases to run.
    pub cases: u32,
}

fn env_u32(name: &str) -> Option<u32> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl Default for ProptestConfig {
    /// 256 cases, overridable via `PROPTEST_CASES`.
    fn default() -> Self {
        ProptestConfig { cases: env_u32("PROPTEST_CASES").unwrap_or(256).max(1) }
    }
}

impl ProptestConfig {
    /// Requests `cases` cases; if `PROPTEST_CASES` is set it acts as a
    /// global cap so CI can shorten every suite at once.
    pub fn with_cases(cases: u32) -> Self {
        let cases = match env_u32("PROPTEST_CASES") {
            Some(cap) => cases.min(cap.max(1)),
            None => cases,
        };
        ProptestConfig { cases: cases.max(1) }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
    /// A `prop_assume!` precondition was not met; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of an associated type from a seeded RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies.
pub mod collection {
    use super::{RngExt, StdRng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{RngExt, StdRng, Strategy};

    /// Strategy yielding `None` half the time and `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.random::<bool>() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `bool` strategies.
pub mod bool {
    use super::{RngExt, StdRng, Strategy};

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random::<bool>()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Test-runner internals used by the [`proptest!`] macro expansion.
pub mod runner {
    use super::{ProptestConfig, SeedableRng, StdRng, TestCaseError};

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn case_seed(name: &str, case: u32) -> u64 {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0);
        fnv1a(name.as_bytes()) ^ base.rotate_left(17) ^ ((case as u64) << 32 | case as u64)
    }

    /// Runs `run_case` for each configured case with a deterministic RNG.
    ///
    /// On failure, `describe` is called with an identically seeded RNG to
    /// re-derive and render the failing inputs, then the test panics.
    pub fn run<F, G>(name: &str, config: &ProptestConfig, mut run_case: F, mut describe: G)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
        G: FnMut(&mut StdRng) -> String,
    {
        let mut rejected: u64 = 0;
        for case in 0..config.cases {
            let seed = case_seed(name, case);
            let mut rng = StdRng::seed_from_u64(seed);
            match run_case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let input = describe(&mut rng);
                    panic!(
                        "proptest `{name}` failed at case {case}/{} (seed {seed}):\n  \
                         {msg}\n  input: {input}",
                        config.cases
                    );
                }
            }
        }
        if rejected > 0 && rejected as u32 >= config.cases {
            panic!("proptest `{name}`: every one of the {} cases was rejected", config.cases);
        }
    }
}

/// Common imports for proptest-based test files.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fails the current case with a formatted message if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format_args!($($fmt)+), l, r
                    )));
                }
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Skips the current case (without failing) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategies = ($($strat,)+);
                $crate::runner::run(
                    stringify!($name),
                    &config,
                    |rng| {
                        let ($($pat,)+) = $crate::Strategy::generate(&strategies, rng);
                        (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    },
                    |rng| format!("{:#?}", $crate::Strategy::generate(&strategies, rng)),
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(<$crate::ProptestConfig as ::std::default::Default>::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn with_cases_is_positive() {
        assert!(ProptestConfig::with_cases(16).cases >= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            n in 1..8_usize,
            xs in crate::collection::vec(-1.0_f64..1.0, 3..10),
            flag in crate::bool::ANY,
            maybe in crate::option::of(0..5_u32),
        ) {
            prop_assert!((1..8).contains(&n));
            prop_assert!(xs.len() >= 3 && xs.len() < 10);
            for &x in &xs {
                prop_assert!((-1.0..1.0).contains(&x));
            }
            prop_assert_ne!(flag, !flag);
            if let Some(v) = maybe {
                prop_assert!(v < 5);
            }
        }

        #[test]
        fn flat_map_threads_dependencies(pair in (1..6_usize).prop_flat_map(|n| {
            crate::collection::vec(0..100_u64, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0..10_u32) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
