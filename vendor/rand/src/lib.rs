//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API surface the workspace uses — a seedable
//! [`rngs::StdRng`], the [`RngExt`] extension methods `random` /
//! `random_range`, and the [`SeedableRng`] constructor trait. The generator
//! is xoshiro256++ seeded through SplitMix64: deterministic for a fixed
//! seed on every platform, which the workspace's golden-value tests rely
//! on.
//!
//! Only the pieces the workspace calls are implemented; this is not a
//! general-purpose replacement for the real crate.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// The sequence produced for a given seed is frozen; regression tests
    /// pin values derived from it.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from an RNG via [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[lo, hi]` (inclusive) over `u64` arithmetic.
fn sample_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    let span = hi.wrapping_sub(lo);
    if span == u64::MAX {
        return rng.next_u64();
    }
    let span = span + 1;
    // Rejection sampling keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return lo.wrapping_add(v % span);
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_u64_inclusive(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                sample_u64_inclusive(rng, lo as u64, hi as u64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let lo = self.start as $u ^ <$t>::MIN as $u;
                let hi = (self.end - 1) as $u ^ <$t>::MIN as $u;
                (sample_u64_inclusive(rng, lo as u64, hi as u64) as $u ^ <$t>::MIN as $u) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let lo = *self.start() as $u ^ <$t>::MIN as $u;
                let hi = *self.end() as $u ^ <$t>::MIN as $u;
                (sample_u64_inclusive(rng, lo as u64, hi as u64) as $u ^ <$t>::MIN as $u) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Extension methods on any [`RngCore`]; mirrors the calling convention of
/// the real crate's `Rng` trait (`random`, `random_range`).
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`. Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias so code written against the real crate's `Rng` name also works.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval_floats() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(5_usize..17);
            assert!((5..17).contains(&v));
            let w = rng.random_range(2_usize..=9);
            assert!((2..=9).contains(&w));
            let x = rng.random_range(-4.0_f64..4.0);
            assert!((-4.0..4.0).contains(&x));
            let s = rng.random_range(-10_i32..-2);
            assert!((-10..-2).contains(&s));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
